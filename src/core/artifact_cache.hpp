// Train-once artifact cache for deployable DART models (DESIGN.md §7).
//
// One place owns the "trace -> teacher -> distilled student -> tabularize"
// recipe for a requested DART variant (`train_dart`) and the persistence of
// its result as a versioned `.dart` artifact. Three consumers share it:
// `core::ExperimentRunner` (per-cell caching keyed by configuration hash),
// `tools/dart_train` (explicit artifact production), and `tools/dart_run`
// (training-free serving). Stale artifacts — anything produced under
// different pipeline knobs — are rejected by comparing the embedded
// configuration key, never silently reused.
#pragma once

#include <optional>
#include <string>

#include "core/pipeline.hpp"
#include "io/artifact.hpp"
#include "sim/registry.hpp"

namespace dart::core {

/// A freshly trained (or reloaded) deployable DART model plus everything
/// needed to persist and serve it.
struct TrainedDart {
  tabular::TabularPredictor predictor;
  tabular::TableConfig tables;        ///< resolved <K, C> configuration
  trace::PreprocessOptions prep;      ///< input geometry for serving
  std::string display_name;           ///< e.g. "DART-L"
  std::size_t latency_cycles = 0;     ///< Eq. 22 cost-model latency
  std::string config_key;             ///< dart_config_key of the producer
};

/// Canonical variant key: lowercased, "" / "m" collapse to "default".
/// Shared by model builders, cache keys, and artifact file names so
/// "dart:variant=L", "DART-L" and "l" all resolve to one model.
std::string normalize_dart_variant(const std::string& variant);

/// Cache key covering the full producing configuration of `request` for
/// `workload` under `options`: the pipeline_cache_key plus the variant and
/// any table overrides. 16 hex digits. (trace::App converts implicitly.)
std::string dart_config_key(const trace::Workload& workload, const PipelineOptions& options,
                            const sim::DartModelRequest& request);

/// Artifact file path `<dir>/<workload>-dart-<variant>[-kK-cC]-<key>.dart`
/// (workload display names are filesystem-safe by construction).
std::string dart_artifact_path(const std::string& dir, const trace::Workload& workload,
                               const PipelineOptions& options,
                               const sim::DartModelRequest& request);

/// Trains the requested variant against `pipe` (the paper's Table VIII
/// setup: the default variant tabularizes the pipeline's cached student;
/// S/L distill a student at the variant's architecture from the shared
/// teacher). Simulation-bound consumers get the hash-tree encoder (O(log K)
/// queries), matching the paper's latency model.
TrainedDart train_dart(Pipeline& pipe, const sim::DartModelRequest& request);

/// Loads `path` as a ready-to-serve sim::DartModel when the file exists and
/// embeds exactly `expected_config_key`. Returns nullopt when missing or
/// stale; a corrupted/unreadable file is reported to stderr and also
/// returns nullopt (the caller retrains and overwrites). A non-kOff `quant`
/// re-quantizes the loaded tables (DESIGN.md §10) before the predictor is
/// shared; kOff serves the artifact as stored.
std::optional<sim::DartModel> try_load_dart_artifact(
    const std::string& path, const std::string& expected_config_key,
    tabular::QuantMode quant = tabular::QuantMode::kOff);

/// The serving reload path (DESIGN.md §9): loads `path` with NO config-key
/// staleness check — hot-swap accepts any valid artifact of compatible
/// geometry as the next epoch; the caller (serve::PrefetchServer) enforces
/// geometry compatibility itself. Unlike try_load_dart_artifact this is
/// loud: it throws io::ArtifactError on missing/corrupted/version-mismatched
/// files, because a failed swap must surface to the operator, never be
/// silently skipped. Optionally fills `info` with the parsed header. A
/// non-kOff `quant` re-quantizes the loaded tables before the predictor is
/// shared (epochs are published already-quantized, so serving threads never
/// observe a mode switch); kOff serves the artifact as stored — including
/// any quantized QNTT chunk it carries.
sim::DartModel load_dart_artifact(const std::string& path, io::ArtifactInfo* info = nullptr,
                                  tabular::QuantMode quant = tabular::QuantMode::kOff);

/// load_dart_artifact over an in-memory byte image (`name` labels errors).
/// The validate-then-publish swap path (serve::PrefetchServer::swap_artifact,
/// DESIGN.md §11) reads the file once, optionally lets the fault injector
/// damage the image, and parses it fully before any epoch is published.
sim::DartModel load_dart_artifact_bytes(std::vector<std::uint8_t> bytes, const std::string& name,
                                        io::ArtifactInfo* info = nullptr,
                                        tabular::QuantMode quant = tabular::QuantMode::kOff);

/// Persists a trained model at `path` (creating parent directories).
/// Best-effort: returns false and warns on I/O failure — a read-only cache
/// directory must never fail the producing run.
bool save_dart_artifact(const std::string& path, const trace::Workload& workload,
                        const TrainedDart& model, const std::string& producer);

}  // namespace dart::core
