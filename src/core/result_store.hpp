// Durable, crash-safe result log for experiment sweeps (DESIGN.md §13).
//
// A ResultStore is an append-only log of per-cell sweep outcomes, one
// checksummed record per completed (or quarantined) cell. The sweep engine
// appends a record the moment a cell resolves and fsyncs it before moving
// on, so a crash — process kill, OOM, injected fault — loses at most the
// cells still in flight. Reopening the store replays every intact record;
// a torn tail (the crash interrupted the last append) is detected by the
// per-record framing + FNV-1a checksum, truncated away with a warning, and
// never refuses the load. Compaction rewrites the log through
// `io::write_file_atomic` (write-temp + fsync + rename), so the log file
// itself can never be observed half-rewritten.
//
// Record framing (all little-endian, DESIGN.md §13 table):
//
//   u32 magic 'DRS1'   u32 payload_len   u64 fnv1a64(payload)   payload
//
// with the payload serialized by io::ByteWriter: a format version byte,
// the cell key, status, attempt count, error string, and the full
// ExperimentCell (spec strings, derived metrics as f64 bit patterns, raw
// simulator counters). Records with the same key supersede each other —
// the LAST record wins on replay, so a retry after a quarantined failure
// simply appends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/experiment.hpp"

namespace dart::core {

/// Thrown when an armed `crash-after-commit` fault (common/fault.hpp) fires
/// on a durable result commit: the in-process simulation of a sweep crash.
/// The record that triggered it IS durable — resuming the sweep reuses it.
class SweepCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One durable sweep-cell outcome.
struct CellRecord {
  /// Cell identity: sweep_cell_key over (workload, prefetcher, config).
  std::uint64_t key = 0;
  /// kDone or kFailed as stored; replayed records loaded into a resumed
  /// sweep surface as kSkipped in that run's accounting.
  CellStatus status = CellStatus::kDone;
  /// Attempts consumed before the cell resolved (1 = first try succeeded).
  std::uint32_t attempts = 0;
  /// Last attempt's error text; empty for kDone records.
  std::string error;
  /// The full result payload (partially filled for kFailed records: the
  /// identity fields are set, the counters stay zero).
  ExperimentCell cell;
};

/// What the recovery scan found when the store was opened.
struct StoreRecovery {
  std::size_t records = 0;        ///< intact records replayed
  std::size_t dropped_bytes = 0;  ///< torn-tail bytes truncated away
  bool truncated = false;         ///< true when a torn tail was dropped
};

/// Identity hash of one sweep cell: chained FNV-1a over the length-prefixed
/// workload spec, prefetcher spec, and configuration key (which folds in
/// the pipeline cache key, nn trigger sampling, and the shard plan). Two
/// cells collide only when they would provably produce the same result.
std::uint64_t sweep_cell_key(const std::string& workload, const std::string& prefetcher,
                             const std::string& config);

/// The append-only, checksummed, resumable sweep result log.
///
/// Thread-safe: concurrent cell workers may `append` while others `find`;
/// every mutation happens under one internal mutex and every append is
/// fsync'd before it returns. After a `crash-after-commit` fault fires the
/// store latches into a crashed state and every further append throws
/// SweepCrash, so in-flight workers of a parallel sweep stop committing —
/// exactly what a real crash would do — while already-durable records
/// survive for the resume.
class ResultStore {
 public:
  /// Opens (creating the directory and an empty log if needed) and replays
  /// `dir`/results.log. Torn tails are truncated — in memory and on disk —
  /// with a stderr warning naming the path and byte offset; an unreadable
  /// directory throws io::ArtifactError. The armed fault injector's
  /// `mutate_store` hook may chop the loaded image first (chaos tests).
  explicit ResultStore(std::string dir);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// The store directory as given.
  const std::string& dir() const { return dir_; }
  /// Path of the active log segment.
  const std::string& log_path() const { return path_; }
  /// What the opening recovery scan found.
  const StoreRecovery& recovery() const { return recovery_; }

  /// Number of distinct cell keys currently stored (last record wins).
  std::size_t size() const;
  /// Copies the latest record for `key` into `*out` and returns true;
  /// false when absent. A copy, not a pointer — the internal slot may be
  /// superseded by a concurrent append.
  bool find(std::uint64_t key, CellRecord* out) const;
  /// Snapshot of the latest record per key, in first-appended order.
  std::vector<CellRecord> records() const;

  /// Durably appends `rec`: serializes, appends to the log, fsyncs, then
  /// consults the fault injector's commit hook — which may throw SweepCrash
  /// or `_Exit(kCrashExitCode)` AFTER the record is safely on disk. Throws
  /// SweepCrash immediately when the store already crashed, and
  /// io::ArtifactError on real I/O failure.
  void append(const CellRecord& rec);

  /// Rewrites the log to contain exactly the latest record per key, via
  /// write-temp + fsync + atomic rename. Safe to crash at any point: the
  /// old or the new log survives, never a torn one. Reclaims the space of
  /// superseded retry records.
  void compact();

 private:
  void replay_and_recover();
  void open_append_fd();

  std::string dir_;
  std::string path_;
  StoreRecovery recovery_;

  mutable std::mutex mu_;
  std::vector<CellRecord> records_;                       ///< latest per key
  std::unordered_map<std::uint64_t, std::size_t> index_;  ///< key -> slot
  int fd_ = -1;           ///< append fd (POSIX); -1 on non-unix fallback
  bool crashed_ = false;  ///< latched by a fired crash-after-commit fault
};

}  // namespace dart::core
