#include "core/artifact_cache.hpp"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "core/configs.hpp"
#include "io/artifact.hpp"
#include "tabular/complexity.hpp"

namespace dart::core {

namespace {

/// Resolves the Table VIII variant for `request`, with table overrides.
DartVariant resolve_variant(const sim::DartModelRequest& request) {
  const std::string variant = normalize_dart_variant(request.variant);
  DartVariant v;
  if (variant == "s") {
    v = dart_s_variant();
  } else if (variant == "l") {
    v = dart_l_variant();
  } else if (variant == "default") {
    v = dart_variant();
  } else {
    throw std::invalid_argument("unknown DART variant '" + request.variant +
                                "' (expected s, default or l)");
  }
  if (request.table_k != 0 || request.table_c != 0) {
    v.tables = tabular::TableConfig::uniform(
        request.table_k != 0 ? request.table_k : v.tables.attention.k,
        request.table_c != 0 ? request.table_c : v.tables.attention.c, v.tables.data_bits);
  }
  return v;
}

}  // namespace

std::string normalize_dart_variant(const std::string& variant) {
  std::string v = variant;
  for (auto& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "m" || v.empty()) v = "default";
  return v;
}

std::string dart_config_key(const trace::Workload& workload, const PipelineOptions& options,
                            const sim::DartModelRequest& request) {
  std::ostringstream key;
  key << pipeline_cache_key(workload, options) << '/' << normalize_dart_variant(request.variant)
      << '/' << request.table_k << '/' << request.table_c;
  const std::string text = key.str();
  std::ostringstream hex;
  hex << std::hex;
  hex.width(16);
  hex.fill('0');
  hex << io::fnv1a64(text.data(), text.size());
  return hex.str();
}

std::string dart_artifact_path(const std::string& dir, const trace::Workload& workload,
                               const PipelineOptions& options,
                               const sim::DartModelRequest& request) {
  std::ostringstream path;
  path << dir << '/' << workload.name() << "-dart-" << normalize_dart_variant(request.variant);
  if (request.table_k != 0) path << "-k" << request.table_k;
  if (request.table_c != 0) path << "-c" << request.table_c;
  path << '-' << dart_config_key(workload, options, request) << ".dart";
  return path.str();
}

TrainedDart train_dart(Pipeline& pipe, const sim::DartModelRequest& request) {
  const PipelineOptions& popts = pipe.options();
  const DartVariant v = resolve_variant(request);
  const std::string variant = normalize_dart_variant(request.variant);

  tabular::TabularizeOptions tab = popts.tab;
  tab.tables = v.tables;
  // Simulation queries must be O(log K): use the hash-tree encoder.
  tab.encoder = pq::EncoderKind::kHashTree;

  TrainedDart out;
  const bool reuse_default_student = variant != "s" && variant != "l";
  if (reuse_default_student) {
    out.predictor = pipe.tabularize(tab);
  } else {
    PipelineOptions po = popts;
    po.student_arch = v.arch;
    Pipeline variant_pipe(pipe.workload(), po);
    // Share the prepared data by re-preparing (deterministic: same seed).
    variant_pipe.prepare();
    nn::AddressPredictor& teacher = pipe.teacher();
    nn::AddressPredictor student(v.arch, common::derive_seed(po.seed, 3));
    nn::train_distill(student, teacher, variant_pipe.train_set(), po.student_train, po.kd);
    out.predictor = tabular::tabularize(student, variant_pipe.train_set().addr,
                                        variant_pipe.train_set().pc, tab);
  }
  out.tables = v.tables;
  out.prep = popts.prep;
  out.display_name = v.name;
  out.latency_cycles = tabular::tabular_model_cost(v.arch, v.tables).latency_cycles;
  out.config_key = dart_config_key(pipe.workload(), popts, request);
  return out;
}

std::optional<sim::DartModel> try_load_dart_artifact(const std::string& path,
                                                     const std::string& expected_config_key,
                                                     tabular::QuantMode quant) {
  if (path.empty() || !std::filesystem::exists(path)) return std::nullopt;
  try {
    io::ArtifactInfo info;
    auto predictor =
        std::make_shared<tabular::TabularPredictor>(io::load_predictor_artifact(path, &info));
    if (info.meta.config_key != expected_config_key) return std::nullopt;  // stale
    if (quant != tabular::QuantMode::kOff && quant != predictor->quant_mode()) {
      // Safe: the predictor is not shared with any query thread yet.
      predictor->set_quant_mode(quant);
    }
    sim::DartModel model;
    model.predictor = std::move(predictor);
    model.latency_cycles = static_cast<std::size_t>(info.meta.latency_cycles);
    model.display_name = info.meta.display_name;
    return model;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[dart] ignoring unreadable artifact %s: %s\n", path.c_str(),
                 e.what());
    return std::nullopt;
  }
}

namespace {

/// Shared tail of the loud reload paths: quantize before sharing, then wrap
/// the predictor as a sim::DartModel.
sim::DartModel finish_loud_load(tabular::TabularPredictor&& loaded, const io::ArtifactInfo& local,
                                io::ArtifactInfo* info, tabular::QuantMode quant) {
  sim::DartModel model;
  auto predictor = std::make_shared<tabular::TabularPredictor>(std::move(loaded));
  if (quant != tabular::QuantMode::kOff && quant != predictor->quant_mode()) {
    // Quantize before the predictor escapes this function: serving layers
    // publish epochs already-quantized (set_quant_mode is not query-safe).
    predictor->set_quant_mode(quant);
  }
  model.predictor = std::move(predictor);
  model.latency_cycles = static_cast<std::size_t>(local.meta.latency_cycles);
  if (!local.meta.display_name.empty()) model.display_name = local.meta.display_name;
  if (info != nullptr) *info = local;
  return model;
}

}  // namespace

sim::DartModel load_dart_artifact(const std::string& path, io::ArtifactInfo* info,
                                  tabular::QuantMode quant) {
  io::ArtifactInfo local;
  return finish_loud_load(io::load_predictor_artifact(path, &local), local, info, quant);
}

sim::DartModel load_dart_artifact_bytes(std::vector<std::uint8_t> bytes, const std::string& name,
                                        io::ArtifactInfo* info, tabular::QuantMode quant) {
  io::ArtifactInfo local;
  return finish_loud_load(io::load_predictor_artifact_bytes(std::move(bytes), name, &local),
                          local, info, quant);
}

bool save_dart_artifact(const std::string& path, const trace::Workload& workload,
                        const TrainedDart& model, const std::string& producer) {
  try {
    std::error_code ec;
    std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
    io::ArtifactMeta meta;
    meta.producer = producer;
    meta.app = workload.spec();
    meta.display_name = model.display_name;
    meta.config_key = model.config_key;
    meta.latency_cycles = model.latency_cycles;
    meta.tables = model.tables;
    meta.prep = model.prep;
    io::save_predictor_artifact(path, model.predictor, meta);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[dart] could not write artifact %s: %s\n", path.c_str(), e.what());
    return false;
  }
}

}  // namespace dart::core
