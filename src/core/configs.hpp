// Canonical model / table configurations used across benches and examples:
// the paper's Table V (Teacher, Student, DART) and Table VIII (DART-S,
// DART, DART-L), plus CPU-friendly scaled-down training defaults
// (substitution #3 in DESIGN.md — set DART_PAPER_SCALE=1 to use the paper's
// full teacher).
#pragma once

#include "nn/transformer.hpp"
#include "tabular/complexity.hpp"
#include "tabular/quant.hpp"
#include "trace/preprocess.hpp"

namespace dart::core {

/// Resolves the process-wide DART_QUANT knob ("off" | "int16" | "int8",
/// default off): the table-quantization mode (DESIGN.md §10) consumers use
/// when a spec/config does not request one explicitly. Throws
/// std::invalid_argument on an unrecognized value so typos fail loudly.
tabular::QuantMode quant_mode_from_env();

/// Shared data-pipeline geometry: T=8 history, 8 address/PC segments of 6
/// bits, 128-wide delta bitmap, 8-access look-forward window.
trace::PreprocessOptions default_preprocess();

/// Table IX prediction latencies of the NN baselines, in cycles ("4.5K" and
/// "27.7K" in the paper). Used both as the registry defaults for the
/// transfetch/voyager entries and for the Table IX display rows.
inline constexpr std::size_t kTransFetchLatencyCycles = 4500;
inline constexpr std::size_t kVoyagerLatencyCycles = 27700;

/// The paper's Table V Teacher: L=4, D=256, H=8 (DF = 4D, DO = 128).
nn::ModelConfig paper_teacher_config();

/// The paper's Table V Student (also the DART backbone): L=1, D=32, H=2.
nn::ModelConfig paper_student_config();

/// Scaled teacher used for CPU training benches by default: L=2, D=64, H=4.
/// Honors DART_PAPER_SCALE=1 to return paper_teacher_config().
nn::ModelConfig bench_teacher_config();

/// Table V DART tables: K=128, C=2 over the student architecture.
tabular::TableConfig dart_table_config();

/// Table VIII variants (architecture, tables) as published.
struct DartVariant {
  const char* name;
  std::size_t tau_cycles;   ///< latency constraint
  double storage_bytes;     ///< storage constraint
  nn::ModelConfig arch;
  tabular::TableConfig tables;
};

DartVariant dart_s_variant();  ///< (1, 16, 2, 16, 1) under (60, 30K)
DartVariant dart_variant();    ///< (1, 32, 2, 128, 2) under (100, 1M)
DartVariant dart_l_variant();  ///< (2, 32, 2, 256, 2) under (200, 4M)

}  // namespace dart::core
