// First-class experiment API for the prefetching evaluation (Figs. 12-14,
// Table IX): an ExperimentSpec names a grid of apps x prefetcher specs, and
// ExperimentRunner schedules the individual (app, prefetcher) cells on the
// shared common::thread_pool — finer-grained than one thread per app, so a
// wide prefetcher list keeps every core busy even with few apps.
//
// Prefetchers are constructed through the sim::PrefetcherRegistry from spec
// strings ("bo", "stride:table=256,degree=4", "dart:variant=l"), with each
// app's trained pipeline artifacts lent to the factories via a
// sim::PrefetcherContext. Adding a scenario is a registry entry plus a spec
// string — this file never changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"

namespace dart::core {

/// How a sweep cell resolved. Every cell of a finished grid carries exactly
/// one status, and `completed + failed + skipped == grid size` always holds
/// (the sweep analogue of the serving layer's exactly-one-resolution
/// invariant, DESIGN.md §13).
enum class CellStatus : std::uint8_t {
  kDone = 0,     ///< simulated in this run (or stored as such)
  kFailed = 1,   ///< quarantined: every allowed attempt failed
  kSkipped = 2,  ///< reused from the result store without re-simulation
};

/// Stable lowercase name for reports and logs ("done"/"failed"/"skipped").
const char* cell_status_name(CellStatus status);

/// Crash-safety and scale-out knobs for a sweep (DESIGN.md §13). All
/// default to the legacy in-memory behavior: no store, no timeout, two
/// retries, unsharded replay.
struct SweepOptions {
  /// Result-store directory; empty disables persistence and resume.
  std::string store_dir;
  /// Wall-clock budget per cell attempt in milliseconds; 0 = unlimited.
  /// A timed-out attempt is abandoned (its thread is reaped before run()
  /// returns) and counts as a failure toward the retry budget.
  std::uint64_t cell_timeout_ms = 0;
  /// Retries after the first failed attempt (total attempts = retries + 1).
  std::uint32_t cell_retries = 2;
  /// Backoff before retry r is `backoff_ms << (r-1)` (doubling); 0 disables.
  std::uint64_t backoff_ms = 10;
  /// Contiguous trace shards per cell replay (sim/shard_replay.hpp); 1 =
  /// classic unsharded replay. Cells whose prefetcher shares a mutable
  /// model (the NN adapters) always replay unsharded.
  std::size_t trace_shards = 1;
  /// Warmup accesses per shard; SIZE_MAX = full-prefix (bit-exact merge).
  std::size_t shard_warmup = static_cast<std::size_t>(-1);

  /// Env-driven defaults: DART_SWEEP_DIR, DART_SWEEP_TIMEOUT_MS,
  /// DART_SWEEP_RETRIES, DART_SWEEP_BACKOFF_MS, DART_SWEEP_SHARDS,
  /// DART_SWEEP_WARMUP (-1 = full prefix).
  static SweepOptions from_env();
};

/// The experiment grid: apps x prefetcher specs, plus shared sim/pipeline
/// configuration.
struct ExperimentSpec {
  std::vector<trace::App> apps;  ///< legacy Table IV app subset
  /// Workload spec strings (trace/workloads.hpp grammar): app names,
  /// "trace:zipfian,theta=0.99,footprint=64M", "tracefile:path=...". Run
  /// after `apps`; when BOTH lists are empty the grid defaults to all eight
  /// Table IV apps.
  std::vector<std::string> workloads;
  /// Prefetcher spec strings (sim/registry.hpp grammar). Defaults to the
  /// paper's evaluated set; legacy display names are registry aliases.
  std::vector<std::string> prefetchers = {"BO",        "ISB",          "TransFetch",
                                          "Voyager",   "TransFetch-I", "Voyager-I",
                                          "DART-S",    "DART",         "DART-L"};
  /// Shared data/training/simulation knobs. When `pipeline.artifact_dir`
  /// is set (DART_ARTIFACT_DIR), the runner persists trained artifacts
  /// there — `.dart` files for the tabular models, checkpoints for the NN
  /// baselines — keyed by a configuration hash, and later sweeps under the
  /// same knobs cold-start from disk with zero training/tabularization.
  PipelineOptions pipeline = PipelineOptions::bench_defaults();
  /// Simulation-cost sampling for the heavyweight NN baselines: run their
  /// (expensive CPU-side) inference on every Nth LLC access. Applied to the
  /// ideal variants too, so comparisons stay fair.
  std::size_t nn_trigger_sample = 4;
  /// Schedule cells on the shared thread pool (false = run in spec order).
  bool parallel = true;
  /// Crash-safety / resume / sharding knobs; defaults keep the legacy
  /// in-memory single-shot behavior.
  SweepOptions sweep;

  /// Env-driven defaults: DART_APPS selects the app subset, DART_WORKLOADS
  /// adds workload specs (';'-separated), and DART_PREFETCHERS accepts
  /// arbitrary prefetcher spec strings (';'-separated; plain ','-separated
  /// name lists also work).
  static ExperimentSpec bench_defaults();
};

/// One (app, prefetcher) result cell.
struct ExperimentCell {
  std::string spec;        ///< spec string as requested
  std::string prefetcher;  ///< display name (Prefetcher::name())
  std::string app;         ///< workload display name, e.g. "605.mcf", "ycsb-b"
  sim::SimStats stats;     ///< raw simulator counters for this cell
  double baseline_ipc = 0.0;     ///< no-prefetcher IPC of the same trace
  double ipc_improvement = 0.0;  ///< (ipc - baseline) / baseline
  std::size_t storage_bytes = 0;   ///< prefetcher metadata/model footprint
  std::size_t latency_cycles = 0;  ///< prediction latency (Table IX)
  /// How this cell resolved (kSkipped = reused from the result store).
  CellStatus status = CellStatus::kDone;
  /// Attempts consumed (1 = first try succeeded; 0 = reused from store
  /// before this run made any attempt).
  std::uint32_t attempts = 0;
  /// Last attempt's error text for kFailed cells; empty otherwise.
  std::string error;
};

/// Mean accuracy / coverage / IPC improvement per prefetcher, in first-seen
/// cell order.
struct PrefetcherSummary {
  std::string prefetcher;            ///< display name being aggregated
  double mean_accuracy = 0.0;        ///< mean Fig. 12 accuracy across apps
  double mean_coverage = 0.0;        ///< mean Fig. 13 coverage across apps
  double mean_ipc_improvement = 0.0; ///< mean Fig. 14 IPC gain across apps
  std::size_t storage_bytes = 0;     ///< max storage across apps
  std::size_t latency_cycles = 0;    ///< prediction latency (config-fixed)
};

/// Structured result of a grid run: app-major cells in request order, plus
/// aggregation and shared CSV/JSON export.
struct ExperimentResult {
  std::vector<ExperimentCell> cells;  ///< app-major, in request order

  /// Distinct app names in first-seen cell order.
  std::vector<std::string> apps() const;
  /// Distinct prefetcher display names in first-seen cell order.
  std::vector<std::string> prefetchers() const;
  /// First cell matching (prefetcher display name, app); nullptr if absent.
  const ExperimentCell* find(const std::string& prefetcher, const std::string& app) const;
  /// Per-prefetcher means across apps (the Table IX aggregation).
  std::vector<PrefetcherSummary> summaries() const;
  /// Number of cells with the given resolution status. For any finished
  /// grid, the three counts sum to `cells.size()`.
  std::size_t count(CellStatus status) const;

  /// CSV round-trip. `tag` is an opaque first-line comment (cache keying);
  /// read_csv returns false when the file is missing or the tag mismatches.
  bool write_csv(const std::string& path, const std::string& tag = "") const;
  /// Parses a write_csv file; returns false on missing file, tag mismatch
  /// or malformed rows (never throws for those cases).
  static bool read_csv(const std::string& path, const std::string& expected_tag,
                       ExperimentResult* out);
  /// Writes the cells as a JSON array (one object per cell).
  bool write_json(const std::string& path) const;
};

/// Evaluates an ExperimentSpec grid: per-app preparation + baseline
/// simulation first, then every (app, prefetcher) cell as an independent
/// task on the shared thread pool. Heavy artifacts (teacher, LSTM, DART
/// tables) are trained lazily, once per app, on first use by any cell — or
/// reloaded from `pipeline.artifact_dir` when a fresh artifact exists.
///
/// With `spec.sweep.store_dir` set the run is RESTARTABLE (DESIGN.md §13):
/// the runner opens the durable result store, replays it, marks every cell
/// whose key (workload x prefetcher x configuration hash) already has a
/// completed record as kSkipped without re-simulating, schedules only the
/// remainder, and commits each resolving cell to the store (fsync'd)
/// before moving on. Cell failures are retried with doubling backoff under
/// an optional wall-clock timeout; exhausted cells are quarantined as
/// kFailed records rather than aborting the sweep, so one pathological
/// cell can never take down an overnight grid.
class ExperimentRunner {
 public:
  /// Captures the grid; nothing runs until `run()`.
  explicit ExperimentRunner(ExperimentSpec spec);

  /// Runs the grid. Spec strings are validated up front (unknown prefetcher
  /// names throw before any training starts). A cell failure is retried per
  /// `spec.sweep` and then quarantined as CellStatus::kFailed — run() still
  /// returns the full grid, with `completed + failed + skipped` equal to
  /// its size. Only infrastructure errors escape: store I/O failure, and
  /// SweepCrash from an injected crash-after-commit fault (in parallel mode
  /// rethrown after all in-flight cells finish; in sequential mode
  /// immediately).
  ExperimentResult run();

 private:
  ExperimentSpec spec_;
};

}  // namespace dart::core
