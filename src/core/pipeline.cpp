#include "core/pipeline.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/configs.hpp"
#include "io/artifact.hpp"
#include "nn/serialize.hpp"
#include "sim/simulator.hpp"

namespace dart::core {

namespace {

void append_train(io::ByteWriter& w, const nn::TrainOptions& t) {
  w.u64(t.epochs);
  w.u64(t.batch_size);
  w.f32(t.lr);
  w.f32(t.pos_weight);
  w.u64(t.shuffle_seed);
}

/// Restores `model` from `path` when the checkpoint exists and matches the
/// architecture; any failure (missing, stale, corrupt) just means "train".
/// CAUTION: load_params copies tensors into the live model before it can
/// detect a truncated tail, so on `false` the model may hold a mix of
/// checkpoint and seeded weights — callers must reinitialize it before
/// training (see the call sites).
template <typename Model>
bool try_load_checkpoint(Model& model, const std::string& path) {
  if (path.empty() || !std::filesystem::exists(path)) return false;
  try {
    nn::load_model(model, path);
    return true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[dart] ignoring stale checkpoint %s: %s\n", path.c_str(), e.what());
    return false;
  }
}

/// Best-effort save: a read-only cache directory degrades to retraining
/// next run, never to a failure of the current one. Writes to a temp file
/// and renames, so a crash mid-write cannot leave a truncated checkpoint
/// under the final name.
template <typename Model>
void save_checkpoint(Model& model, const std::string& path) {
  if (path.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(std::filesystem::path(path).parent_path(), ec);
  const std::string tmp = path + ".tmp";
  if (!nn::save_model(model, tmp)) {
    std::fprintf(stderr, "[dart] could not write checkpoint %s\n", path.c_str());
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::fprintf(stderr, "[dart] could not rename checkpoint into %s\n", path.c_str());
    std::filesystem::remove(tmp, ec);
  }
}

}  // namespace

std::string pipeline_cache_key(const trace::Workload& workload, const PipelineOptions& o) {
  // Field lists come from the io codecs shared with the artifact chunks, so
  // a new struct field can never update the stored format but not the key.
  io::ByteWriter w;
  w.str(workload.spec());
  io::put_prep(w, o.prep);
  io::put_model_config(w, o.teacher_arch);
  io::put_model_config(w, o.student_arch);
  append_train(w, o.teacher_train);
  append_train(w, o.student_train);
  w.f32(o.kd.temperature);
  w.f32(o.kd.lambda);
  io::put_table_config(w, o.tab.tables);
  w.u8(o.tab.fine_tune ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(o.tab.ft.method));
  w.f32(o.tab.ft.ridge_lambda);
  w.u64(o.tab.ft.epochs);
  w.u64(o.tab.ft.batch_size);
  w.f32(o.tab.ft.lr);
  w.u64(o.tab.ft.seed);
  w.u8(static_cast<std::uint8_t>(o.tab.attention_activation));
  w.u8(static_cast<std::uint8_t>(o.tab.encoder));
  w.u64(o.tab.kmeans_iters);
  w.u64(o.tab.max_train_samples);
  w.u64(o.tab.seed);
  // Trace generation + LLC extraction geometry (they shape the dataset).
  w.u64(o.raw_accesses);
  w.f32(static_cast<float>(o.train_frac));
  w.u64(o.seed);
  for (std::size_t v : {o.sim.l1_size, o.sim.l1_ways, o.sim.l1_mshrs, o.sim.l2_size,
                        o.sim.l2_ways, o.sim.l2_mshrs, o.sim.llc_size, o.sim.llc_ways,
                        o.sim.llc_mshrs}) {
    w.u64(v);
  }
  std::ostringstream hex;
  hex << std::hex;
  hex.width(16);
  hex.fill('0');
  hex << io::fnv1a64(w.bytes().data(), w.size());
  return hex.str();
}

PipelineOptions PipelineOptions::bench_defaults() {
  PipelineOptions o;
  o.prep = default_preprocess();
  o.teacher_arch = bench_teacher_config();
  o.student_arch = paper_student_config();
  o.teacher_train.epochs = static_cast<std::size_t>(common::env_int("DART_EPOCHS", 6));
  o.teacher_train.batch_size = 64;
  o.teacher_train.lr = 1e-3f;
  o.student_train = o.teacher_train;
  o.kd.temperature = 2.0f;
  o.kd.lambda = 0.5f;
  o.tab.tables = dart_table_config();
  o.tab.max_train_samples = 2048;
  o.raw_accesses = static_cast<std::size_t>(common::env_int("DART_SIM_INSTR", 400000));
  o.prep.max_samples = static_cast<std::size_t>(common::env_int("DART_TRAIN_SAMPLES", 6000));
  o.artifact_dir = common::env_string("DART_ARTIFACT_DIR", "");
  return o;
}

std::string Pipeline::checkpoint_path(const char* model) {
  if (opts_.artifact_dir.empty()) return "";
  if (cache_key_.empty()) cache_key_ = pipeline_cache_key(workload_, opts_);
  return opts_.artifact_dir + "/" + workload_.name() + "-" + model + "-" + cache_key_ + ".ckpt";
}

Pipeline::Pipeline(trace::Workload workload, const PipelineOptions& options)
    : workload_(std::move(workload)), opts_(options) {}

void Pipeline::prepare() {
  if (prepared_) return;
  raw_ = workload_.generate(opts_.raw_accesses, common::derive_seed(opts_.seed, 1));
  // The calling thread's SimWorkspace supplies the L1/L2 filter state, so
  // per-app preprocessing reuses cache arrays instead of reallocating.
  llc_ = sim::extract_llc_trace(raw_, opts_.sim, sim::thread_local_sim_workspace());
  // Guard against workloads that are so cache-friendly the LLC stream is
  // too short to window: fall back to the raw trace.
  const std::size_t need = opts_.prep.history + opts_.prep.lookforward + 64;
  const trace::MemoryTrace& source = llc_.size() >= need ? llc_ : raw_;
  nn::Dataset all = trace::make_dataset(source, opts_.prep);
  // Temporal split: train on the prefix, test on the suffix.
  auto [train, test] = all.split(opts_.train_frac);
  train_ = std::move(train);
  test_ = std::move(test);
  prepared_ = true;
}

nn::AddressPredictor& Pipeline::teacher() {
  if (!teacher_) {
    prepare();
    teacher_ = std::make_shared<nn::AddressPredictor>(opts_.teacher_arch,
                                                      common::derive_seed(opts_.seed, 2));
    const std::string ckpt = checkpoint_path("teacher");
    if (!try_load_checkpoint(*teacher_, ckpt)) {
      // Rebuild from the seeded init: a corrupt checkpoint may have
      // partially overwritten the weights before the load failed.
      teacher_ = std::make_shared<nn::AddressPredictor>(opts_.teacher_arch,
                                                        common::derive_seed(opts_.seed, 2));
      nn::train_bce(*teacher_, train_, opts_.teacher_train);
      save_checkpoint(*teacher_, ckpt);
    }
  }
  return *teacher_;
}

std::shared_ptr<nn::AddressPredictor> Pipeline::teacher_shared() {
  teacher();
  return teacher_;
}

nn::AddressPredictor& Pipeline::student_no_kd() {
  if (!student_no_kd_) {
    prepare();
    student_no_kd_ = std::make_unique<nn::AddressPredictor>(opts_.student_arch,
                                                            common::derive_seed(opts_.seed, 3));
    nn::train_bce(*student_no_kd_, train_, opts_.student_train);
  }
  return *student_no_kd_;
}

nn::AddressPredictor& Pipeline::student() {
  if (!student_) {
    prepare();
    student_ = std::make_unique<nn::AddressPredictor>(opts_.student_arch,
                                                      common::derive_seed(opts_.seed, 3));
    const std::string ckpt = checkpoint_path("student");
    // A student checkpoint hit also skips teacher training entirely — the
    // teacher's only role in the distilled pipeline is producing the
    // student's soft targets.
    if (!try_load_checkpoint(*student_, ckpt)) {
      student_ = std::make_unique<nn::AddressPredictor>(opts_.student_arch,
                                                        common::derive_seed(opts_.seed, 3));
      nn::train_distill(*student_, teacher(), train_, opts_.student_train, opts_.kd);
      save_checkpoint(*student_, ckpt);
    }
  }
  return *student_;
}

tabular::TabularPredictor Pipeline::tabularize(const tabular::TabularizeOptions& options,
                                               tabular::TabularizeReport* report) {
  nn::AddressPredictor& s = student();
  return tabular::tabularize(s, train_.addr, train_.pc, options, report);
}

tabular::TabularPredictor& Pipeline::dart() {
  if (!dart_) {
    dart_ = std::make_unique<tabular::TabularPredictor>(tabularize(opts_.tab));
  }
  return *dart_;
}

nn::LstmPredictor& Pipeline::lstm_baseline() {
  if (!lstm_) {
    prepare();
    lstm_ = std::make_shared<nn::LstmPredictor>(
        opts_.prep.addr_segments, opts_.prep.pc_segments, /*hidden=*/64,
        opts_.prep.bitmap_size, common::derive_seed(opts_.seed, 4));
    const std::string ckpt = checkpoint_path("lstm");
    if (!try_load_checkpoint(*lstm_, ckpt)) {
      lstm_ = std::make_shared<nn::LstmPredictor>(
          opts_.prep.addr_segments, opts_.prep.pc_segments, /*hidden=*/64,
          opts_.prep.bitmap_size, common::derive_seed(opts_.seed, 4));
      nn::train_bce(*lstm_, train_, opts_.student_train);
      save_checkpoint(*lstm_, ckpt);
    }
  }
  return *lstm_;
}

std::shared_ptr<nn::LstmPredictor> Pipeline::lstm_baseline_shared() {
  lstm_baseline();
  return lstm_;
}

nn::F1Result Pipeline::eval_nn(nn::AddressPredictor& model) {
  prepare();
  return nn::evaluate_f1(model, test_);
}

nn::F1Result Pipeline::eval_lstm(nn::LstmPredictor& model) {
  prepare();
  return nn::evaluate_f1(model, test_);
}

nn::F1Result Pipeline::eval_tabular(const tabular::TabularPredictor& model) {
  prepare();
  return evaluate_tabular_f1(model, test_);
}

const nn::Dataset& Pipeline::train_set() {
  prepare();
  return train_;
}

const nn::Dataset& Pipeline::test_set() {
  prepare();
  return test_;
}

const trace::MemoryTrace& Pipeline::raw_trace() {
  prepare();
  return raw_;
}

const trace::MemoryTrace& Pipeline::llc_trace() {
  prepare();
  return llc_;
}

nn::F1Result evaluate_tabular_f1(const tabular::TabularPredictor& model, const nn::Dataset& data,
                                 std::size_t batch) {
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t begin = 0; begin < data.size(); begin += batch) {
    const std::size_t end = std::min(data.size(), begin + batch);
    nn::Dataset b = data.slice(begin, end);
    nn::Tensor probs = model.forward(b.addr, b.pc);
    nn::F1Result r = nn::f1_score_from_probs(probs, b.labels);
    tp += r.true_pos;
    fp += r.false_pos;
    fn += r.false_neg;
  }
  nn::F1Result total;
  total.true_pos = tp;
  total.false_pos = fp;
  total.false_neg = fn;
  total.precision = (tp + fp) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  total.recall = (tp + fn) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  total.f1 = (total.precision + total.recall) > 0.0
                 ? 2.0 * total.precision * total.recall / (total.precision + total.recall)
                 : 0.0;
  return total;
}

}  // namespace dart::core
