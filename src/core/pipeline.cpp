#include "core/pipeline.hpp"

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/configs.hpp"
#include "sim/simulator.hpp"

namespace dart::core {

PipelineOptions PipelineOptions::bench_defaults() {
  PipelineOptions o;
  o.prep = default_preprocess();
  o.teacher_arch = bench_teacher_config();
  o.student_arch = paper_student_config();
  o.teacher_train.epochs = static_cast<std::size_t>(common::env_int("DART_EPOCHS", 6));
  o.teacher_train.batch_size = 64;
  o.teacher_train.lr = 1e-3f;
  o.student_train = o.teacher_train;
  o.kd.temperature = 2.0f;
  o.kd.lambda = 0.5f;
  o.tab.tables = dart_table_config();
  o.tab.max_train_samples = 2048;
  o.raw_accesses = static_cast<std::size_t>(common::env_int("DART_SIM_INSTR", 400000));
  o.prep.max_samples = static_cast<std::size_t>(common::env_int("DART_TRAIN_SAMPLES", 6000));
  return o;
}

Pipeline::Pipeline(trace::App app, const PipelineOptions& options) : app_(app), opts_(options) {}

void Pipeline::prepare() {
  if (prepared_) return;
  raw_ = trace::generate(app_, opts_.raw_accesses, common::derive_seed(opts_.seed, 1));
  llc_ = sim::extract_llc_trace(raw_, opts_.sim);
  // Guard against workloads that are so cache-friendly the LLC stream is
  // too short to window: fall back to the raw trace.
  const std::size_t need = opts_.prep.history + opts_.prep.lookforward + 64;
  const trace::MemoryTrace& source = llc_.size() >= need ? llc_ : raw_;
  nn::Dataset all = trace::make_dataset(source, opts_.prep);
  // Temporal split: train on the prefix, test on the suffix.
  auto [train, test] = all.split(opts_.train_frac);
  train_ = std::move(train);
  test_ = std::move(test);
  prepared_ = true;
}

nn::AddressPredictor& Pipeline::teacher() {
  if (!teacher_) {
    prepare();
    teacher_ = std::make_shared<nn::AddressPredictor>(opts_.teacher_arch,
                                                      common::derive_seed(opts_.seed, 2));
    nn::train_bce(*teacher_, train_, opts_.teacher_train);
  }
  return *teacher_;
}

std::shared_ptr<nn::AddressPredictor> Pipeline::teacher_shared() {
  teacher();
  return teacher_;
}

nn::AddressPredictor& Pipeline::student_no_kd() {
  if (!student_no_kd_) {
    prepare();
    student_no_kd_ = std::make_unique<nn::AddressPredictor>(opts_.student_arch,
                                                            common::derive_seed(opts_.seed, 3));
    nn::train_bce(*student_no_kd_, train_, opts_.student_train);
  }
  return *student_no_kd_;
}

nn::AddressPredictor& Pipeline::student() {
  if (!student_) {
    nn::AddressPredictor& t = teacher();
    student_ = std::make_unique<nn::AddressPredictor>(opts_.student_arch,
                                                      common::derive_seed(opts_.seed, 3));
    nn::train_distill(*student_, t, train_, opts_.student_train, opts_.kd);
  }
  return *student_;
}

tabular::TabularPredictor Pipeline::tabularize(const tabular::TabularizeOptions& options,
                                               tabular::TabularizeReport* report) {
  nn::AddressPredictor& s = student();
  return tabular::tabularize(s, train_.addr, train_.pc, options, report);
}

tabular::TabularPredictor& Pipeline::dart() {
  if (!dart_) {
    dart_ = std::make_unique<tabular::TabularPredictor>(tabularize(opts_.tab));
  }
  return *dart_;
}

nn::LstmPredictor& Pipeline::lstm_baseline() {
  if (!lstm_) {
    prepare();
    lstm_ = std::make_shared<nn::LstmPredictor>(
        opts_.prep.addr_segments, opts_.prep.pc_segments, /*hidden=*/64,
        opts_.prep.bitmap_size, common::derive_seed(opts_.seed, 4));
    nn::train_bce(*lstm_, train_, opts_.student_train);
  }
  return *lstm_;
}

std::shared_ptr<nn::LstmPredictor> Pipeline::lstm_baseline_shared() {
  lstm_baseline();
  return lstm_;
}

nn::F1Result Pipeline::eval_nn(nn::AddressPredictor& model) {
  prepare();
  return nn::evaluate_f1(model, test_);
}

nn::F1Result Pipeline::eval_lstm(nn::LstmPredictor& model) {
  prepare();
  return nn::evaluate_f1(model, test_);
}

nn::F1Result Pipeline::eval_tabular(const tabular::TabularPredictor& model) {
  prepare();
  return evaluate_tabular_f1(model, test_);
}

const nn::Dataset& Pipeline::train_set() {
  prepare();
  return train_;
}

const nn::Dataset& Pipeline::test_set() {
  prepare();
  return test_;
}

const trace::MemoryTrace& Pipeline::raw_trace() {
  prepare();
  return raw_;
}

const trace::MemoryTrace& Pipeline::llc_trace() {
  prepare();
  return llc_;
}

nn::F1Result evaluate_tabular_f1(const tabular::TabularPredictor& model, const nn::Dataset& data,
                                 std::size_t batch) {
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t begin = 0; begin < data.size(); begin += batch) {
    const std::size_t end = std::min(data.size(), begin + batch);
    nn::Dataset b = data.slice(begin, end);
    nn::Tensor probs = model.forward(b.addr, b.pc);
    nn::F1Result r = nn::f1_score_from_probs(probs, b.labels);
    tp += r.true_pos;
    fp += r.false_pos;
    fn += r.false_neg;
  }
  nn::F1Result total;
  total.true_pos = tp;
  total.false_pos = fp;
  total.false_neg = fn;
  total.precision = (tp + fp) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  total.recall = (tp + fn) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  total.f1 = (total.precision + total.recall) > 0.0
                 ? 2.0 * total.precision * total.recall / (total.precision + total.recall)
                 : 0.0;
  return total;
}

}  // namespace dart::core
