// Model-backed prefetcher registry entries (DESIGN.md §4): the NN baselines
// (TransFetch-like attention, Voyager-like LSTM, plus their zero-latency
// "-I" ideals) and the DART tabular variants. All trained artifacts come
// from the PrefetcherContext, so these factories work under any harness
// that can lend models — ExperimentRunner, tests, or custom drivers.
#include <memory>
#include <stdexcept>

#include "core/configs.hpp"
#include "io/artifact.hpp"
#include "prefetch/nn_prefetchers.hpp"
#include "sim/registry.hpp"

namespace dart::sim {

namespace {

/// Shared adapter knobs every model-backed spec accepts: threshold=, degree=
/// and sample= (trigger sampling; NN baselines default to the context's
/// simulation-cost sampling, DART is cheap enough to trigger every access).
prefetch::NnAdapterOptions adapter_options(PrefetcherSpec& spec, PrefetcherContext& context,
                                           std::size_t default_sample) {
  prefetch::NnAdapterOptions o;
  o.prep = context.prep;
  o.degree = spec.get_uint("degree", context.degree);
  o.threshold = static_cast<float>(spec.get_double("threshold", o.threshold));
  o.trigger_sample = spec.get_uint("sample", default_sample);
  o.initiation_interval = spec.get_uint("ii", o.initiation_interval);
  return o;
}

void require(bool present, const PrefetcherSpec& spec, const char* provider) {
  if (!present) {
    throw std::runtime_error("prefetcher spec '" + spec.text() + "' needs a trained model: " +
                             "PrefetcherContext::" + provider + " is not set");
  }
}

/// `quant=off|int16|int8` on the DART specs: an explicit value wins, an
/// absent key falls back to the process-wide DART_QUANT knob.
tabular::QuantMode quant_param(PrefetcherSpec& spec) {
  const std::string value = spec.get_string("quant", "");
  return value.empty() ? core::quant_mode_from_env() : tabular::parse_quant_mode(value);
}

}  // namespace

void register_model_backed_prefetchers(PrefetcherRegistry& registry) {
  registry.add("transfetch", [](PrefetcherSpec& spec, PrefetcherContext& context) {
    require(static_cast<bool>(context.attention_model), spec, "attention_model");
    const bool ideal = spec.get_flag("ideal");
    prefetch::NnAdapterOptions o = adapter_options(spec, context, context.nn_trigger_sample);
    o.latency = ideal ? 0 : spec.get_uint("latency", core::kTransFetchLatencyCycles);
    return std::make_unique<prefetch::AttentionPrefetcher>(
        context.attention_model(), o, ideal ? "TransFetch-I" : "TransFetch");
  });
  registry.add_alias("transfetch-i", "transfetch", {{"ideal", "1"}});

  registry.add("voyager", [](PrefetcherSpec& spec, PrefetcherContext& context) {
    require(static_cast<bool>(context.lstm_model), spec, "lstm_model");
    const bool ideal = spec.get_flag("ideal");
    prefetch::NnAdapterOptions o = adapter_options(spec, context, context.nn_trigger_sample);
    o.latency = ideal ? 0 : spec.get_uint("latency", core::kVoyagerLatencyCycles);
    return std::make_unique<prefetch::LstmPrefetcher>(context.lstm_model(), o,
                                                      ideal ? "Voyager-I" : "Voyager");
  });
  registry.add_alias("voyager-i", "voyager", {{"ideal", "1"}});

  registry.add("dart", [](PrefetcherSpec& spec, PrefetcherContext& context) {
    require(static_cast<bool>(context.dart_model), spec, "dart_model");
    DartModelRequest request;
    request.variant = spec.get_string("variant", "default");
    request.table_k = spec.get_uint("tables", 0);
    request.table_c = spec.get_uint("codebooks", 0);
    request.quant = quant_param(spec);
    const DartModel model = context.dart_model(request);
    prefetch::NnAdapterOptions o = adapter_options(spec, context, /*default_sample=*/1);
    o.latency = spec.get_uint("latency", model.latency_cycles);
    return std::make_unique<prefetch::DartPrefetcher>(model.predictor, o, model.display_name);
  });
  registry.add_alias("dart-s", "dart", {{"variant", "s"}});
  registry.add_alias("dart-l", "dart", {{"variant", "l"}});

  // Serving-process entry: a DART prefetcher cold-started from a versioned
  // `.dart` artifact (tools/dart_train output) — no trained pipeline, no
  // context providers, no training dependency. The artifact's embedded
  // preprocessing geometry overrides the context's, since inference inputs
  // must be built exactly as the model was trained.
  registry.add("dart-artifact", [](PrefetcherSpec& spec, PrefetcherContext& context) {
    const std::string file = spec.get_string("file", "");
    if (file.empty()) {
      throw std::invalid_argument("prefetcher spec '" + spec.text() +
                                  "' needs file=<path to .dart artifact>");
    }
    io::ArtifactInfo info;
    auto predictor =
        std::make_shared<tabular::TabularPredictor>(io::load_predictor_artifact(file, &info));
    // quant=off keeps whatever the artifact stored (a QNTT chunk attaches
    // verbatim); an explicit mode or DART_QUANT re-quantizes on load.
    const tabular::QuantMode quant = quant_param(spec);
    if (quant != tabular::QuantMode::kOff && quant != predictor->quant_mode()) {
      predictor->set_quant_mode(quant);
    }
    prefetch::NnAdapterOptions o = adapter_options(spec, context, /*default_sample=*/1);
    o.prep = info.meta.prep;
    o.latency = spec.get_uint("latency", static_cast<std::size_t>(info.meta.latency_cycles));
    const std::string name =
        info.meta.display_name.empty() ? "DART(artifact)" : info.meta.display_name;
    return std::make_unique<prefetch::DartPrefetcher>(std::move(predictor), o, name);
  });
}

}  // namespace dart::sim
