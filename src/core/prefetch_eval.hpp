// Shared driver for the prefetching evaluation (Figs. 12-14, Table IX):
// trains per-app predictors once, instantiates every requested prefetcher,
// runs the timing simulator, and returns per-(app, prefetcher) statistics
// including IPC improvement over the no-prefetcher baseline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "sim/simulator.hpp"

namespace dart::core {

struct PrefetchCell {
  std::string prefetcher;
  std::string app;
  sim::SimStats stats;
  double baseline_ipc = 0.0;
  double ipc_improvement = 0.0;  ///< (ipc - baseline) / baseline
  std::size_t storage_bytes = 0;
  std::size_t latency_cycles = 0;
};

struct PrefetchEvalOptions {
  PipelineOptions pipeline = PipelineOptions::bench_defaults();
  /// Which prefetchers to run. Known names: NextLine, Stride, BO, ISB,
  /// TransFetch, TransFetch-I, Voyager, Voyager-I, DART-S, DART, DART-L.
  std::vector<std::string> prefetchers = {"BO",        "ISB",       "TransFetch",
                                          "Voyager",   "TransFetch-I", "Voyager-I",
                                          "DART-S",    "DART",      "DART-L"};
  std::size_t transfetch_latency = 4500;   ///< Table IX
  std::size_t voyager_latency = 27700;     ///< Table IX
  /// Simulation-cost sampling for the heavyweight NN baselines: run their
  /// (expensive CPU-side) inference on every Nth LLC access. Applied to the
  /// ideal variants too, so comparisons stay fair.
  std::size_t nn_trigger_sample = 4;
  bool parallel_apps = true;
};

/// Runs the full sweep over `apps`. Results are ordered app-major in the
/// order given, prefetchers in the order requested.
std::vector<PrefetchCell> evaluate_prefetchers(const std::vector<trace::App>& apps,
                                               const PrefetchEvalOptions& options);

/// Mean IPC improvement / accuracy / coverage per prefetcher, preserving
/// request order.
struct PrefetchSummary {
  std::string prefetcher;
  double mean_accuracy = 0.0;
  double mean_coverage = 0.0;
  double mean_ipc_improvement = 0.0;
  std::size_t storage_bytes = 0;
  std::size_t latency_cycles = 0;
};

std::vector<PrefetchSummary> summarize(const std::vector<PrefetchCell>& cells);

}  // namespace dart::core
