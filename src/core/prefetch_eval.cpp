#include "core/prefetch_eval.hpp"

#include <map>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "core/configs.hpp"
#include "prefetch/nn_prefetchers.hpp"
#include "prefetch/rule_based.hpp"
#include "tabular/complexity.hpp"

namespace dart::core {

namespace {

/// Per-app evaluation: builds the pipeline stages each requested prefetcher
/// needs, then runs the simulator once per prefetcher.
std::vector<PrefetchCell> evaluate_app(trace::App app, const PrefetchEvalOptions& opt) {
  Pipeline pipe(app, opt.pipeline);
  pipe.prepare();
  sim::Simulator simulator(opt.pipeline.sim);
  const trace::MemoryTrace& raw = pipe.raw_trace();

  const sim::SimStats baseline = simulator.run(raw, nullptr);
  const double base_ipc = baseline.ipc();

  prefetch::NnAdapterOptions nn_opts;
  nn_opts.prep = opt.pipeline.prep;
  nn_opts.degree = opt.pipeline.sim.max_degree;

  // Lazily shared heavy models.
  std::shared_ptr<nn::AddressPredictor> transfetch_model;
  std::shared_ptr<nn::LstmPredictor> voyager_model;
  auto get_transfetch = [&]() {
    if (!transfetch_model) {
      // The TransFetch baseline *is* an attention predictor; reuse the
      // pipeline's large teacher model as the TransFetch network.
      transfetch_model = std::shared_ptr<nn::AddressPredictor>(&pipe.teacher(),
                                                               [](nn::AddressPredictor*) {});
    }
    return transfetch_model;
  };
  auto get_voyager = [&]() {
    if (!voyager_model) {
      voyager_model =
          std::shared_ptr<nn::LstmPredictor>(&pipe.lstm_baseline(), [](nn::LstmPredictor*) {});
    }
    return voyager_model;
  };

  // DART variants: distill a student at the variant's architecture, then
  // tabularize with the variant's tables. The default DART reuses the
  // pipeline's cached student.
  auto make_dart = [&](const DartVariant& variant,
                       bool reuse_default) -> std::unique_ptr<sim::Prefetcher> {
    tabular::TabularizeOptions tab = opt.pipeline.tab;
    tab.tables = variant.tables;
    // Simulation queries must be O(log K): use the hash-tree encoder.
    tab.encoder = pq::EncoderKind::kHashTree;
    std::shared_ptr<tabular::TabularPredictor> predictor;
    if (reuse_default) {
      predictor = std::make_shared<tabular::TabularPredictor>(pipe.tabularize(tab));
    } else {
      PipelineOptions po = opt.pipeline;
      po.student_arch = variant.arch;
      Pipeline variant_pipe(app, po);
      // Share the prepared data by re-preparing (deterministic: same seed).
      variant_pipe.prepare();
      nn::AddressPredictor& t = pipe.teacher();
      nn::AddressPredictor student(variant.arch, common::derive_seed(po.seed, 3));
      nn::train_distill(student, t, variant_pipe.train_set(), po.student_train, po.kd);
      predictor = std::make_shared<tabular::TabularPredictor>(
          tabular::tabularize(student, variant_pipe.train_set().addr,
                              variant_pipe.train_set().pc, tab));
    }
    const tabular::ModelCost cost = tabular::tabular_model_cost(variant.arch, variant.tables);
    prefetch::NnAdapterOptions o = nn_opts;
    o.latency = cost.latency_cycles;
    return std::make_unique<prefetch::DartPrefetcher>(predictor, o, variant.name);
  };

  auto make_prefetcher = [&](const std::string& name) -> std::unique_ptr<sim::Prefetcher> {
    if (name == "NextLine") return std::make_unique<prefetch::NextLinePrefetcher>(2);
    if (name == "Stride") return std::make_unique<prefetch::StridePrefetcher>();
    if (name == "BO") return std::make_unique<prefetch::BestOffsetPrefetcher>();
    if (name == "ISB") return std::make_unique<prefetch::IsbPrefetcher>();
    if (name == "TransFetch" || name == "TransFetch-I") {
      prefetch::NnAdapterOptions o = nn_opts;
      o.latency = name == "TransFetch" ? opt.transfetch_latency : 0;
      o.trigger_sample = opt.nn_trigger_sample;
      return std::make_unique<prefetch::AttentionPrefetcher>(get_transfetch(), o, name);
    }
    if (name == "Voyager" || name == "Voyager-I") {
      prefetch::NnAdapterOptions o = nn_opts;
      o.latency = name == "Voyager" ? opt.voyager_latency : 0;
      o.trigger_sample = opt.nn_trigger_sample;
      return std::make_unique<prefetch::LstmPrefetcher>(get_voyager(), o, name);
    }
    if (name == "DART-S") return make_dart(dart_s_variant(), false);
    if (name == "DART") return make_dart(dart_variant(), true);
    if (name == "DART-L") return make_dart(dart_l_variant(), false);
    throw std::invalid_argument("unknown prefetcher: " + name);
  };

  std::vector<PrefetchCell> cells;
  for (const std::string& name : opt.prefetchers) {
    auto pf = make_prefetcher(name);
    const sim::SimStats stats = simulator.run(raw, pf.get());
    PrefetchCell cell;
    cell.prefetcher = name;
    cell.app = trace::app_name(app);
    cell.stats = stats;
    cell.baseline_ipc = base_ipc;
    cell.ipc_improvement = base_ipc > 0.0 ? (stats.ipc() - base_ipc) / base_ipc : 0.0;
    cell.storage_bytes = pf->storage_bytes();
    cell.latency_cycles = pf->prediction_latency();
    cells.push_back(cell);
  }
  return cells;
}

}  // namespace

std::vector<PrefetchCell> evaluate_prefetchers(const std::vector<trace::App>& apps,
                                               const PrefetchEvalOptions& options) {
  std::vector<std::vector<PrefetchCell>> per_app(apps.size());
  if (options.parallel_apps && apps.size() > 1) {
    std::vector<std::thread> threads;
    threads.reserve(apps.size());
    for (std::size_t i = 0; i < apps.size(); ++i) {
      threads.emplace_back([&, i] { per_app[i] = evaluate_app(apps[i], options); });
    }
    for (auto& t : threads) t.join();
  } else {
    for (std::size_t i = 0; i < apps.size(); ++i) per_app[i] = evaluate_app(apps[i], options);
  }
  std::vector<PrefetchCell> out;
  for (auto& v : per_app) out.insert(out.end(), v.begin(), v.end());
  return out;
}

std::vector<PrefetchSummary> summarize(const std::vector<PrefetchCell>& cells) {
  std::vector<PrefetchSummary> order;
  std::map<std::string, std::pair<PrefetchSummary, std::size_t>> agg;
  for (const auto& c : cells) {
    auto it = agg.find(c.prefetcher);
    if (it == agg.end()) {
      PrefetchSummary s;
      s.prefetcher = c.prefetcher;
      it = agg.emplace(c.prefetcher, std::make_pair(s, 0)).first;
      order.push_back(s);  // reserve order slot
    }
    auto& [sum, n] = it->second;
    sum.mean_accuracy += c.stats.accuracy();
    sum.mean_coverage += c.stats.coverage();
    sum.mean_ipc_improvement += c.ipc_improvement;
    sum.storage_bytes = std::max(sum.storage_bytes, c.storage_bytes);
    sum.latency_cycles = c.latency_cycles;
    ++n;
  }
  for (auto& s : order) {
    auto& [sum, n] = agg.at(s.prefetcher);
    s = sum;
    if (n > 0) {
      s.mean_accuracy /= static_cast<double>(n);
      s.mean_coverage /= static_cast<double>(n);
      s.mean_ipc_improvement /= static_cast<double>(n);
    }
  }
  return order;
}

}  // namespace dart::core
