// Classic product quantization (the paper's §II-B): approximate a^T b by
// quantizing `a` per subspace and looking up precomputed prototype·b values.
//
// This module is the reference implementation the tabularization kernels
// build upon; it also backs the PQ unit/property tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "pq/encoder.hpp"
#include "pq/kmeans.hpp"

namespace dart::pq {

struct PqConfig {
  std::size_t num_subspaces = 2;      ///< C
  std::size_t num_prototypes = 16;    ///< K
  EncoderKind encoder = EncoderKind::kExact;
  KMeansOptions kmeans;
};

/// Per-subspace prototype set + encoders trained on a sample of vectors.
class ProductQuantizer {
 public:
  /// Learns prototypes from `training` ([N, D]); D must divide by C.
  ProductQuantizer(const nn::Tensor& training, const PqConfig& config);

  std::size_t dim() const { return dim_; }
  std::size_t num_subspaces() const { return config_.num_subspaces; }
  std::size_t num_prototypes() const { return config_.num_prototypes; }
  std::size_t sub_dim() const { return dim_ / config_.num_subspaces; }

  /// Encodes one vector (length D) to C prototype indices.
  std::vector<std::uint32_t> encode(const float* vec) const;

  /// Encodes every row of [N, D] into [N, C] codes (parallel over rows).
  std::vector<std::uint32_t> encode_all(const nn::Tensor& rows) const;

  /// Reconstructs the quantized approximation of `vec` (for error analysis).
  std::vector<float> reconstruct(const float* vec) const;

  /// Prototype matrix of subspace c: [K, V].
  const nn::Tensor& prototypes(std::size_t c) const { return prototypes_.at(c); }

  /// Builds the h-table (Eq. 6) for a fixed weight vector b (length D):
  /// table[c*K + k] = b_c · P_ck.
  std::vector<float> build_table(const float* weight) const;

  /// Query (Eq. 8): sum_c table[c*K + code[c]].
  static float query(const std::vector<float>& table, const std::vector<std::uint32_t>& code,
                     std::size_t k);

  const PqConfig& config() const { return config_; }

 private:
  PqConfig config_;
  std::size_t dim_;
  std::vector<nn::Tensor> prototypes_;            ///< C tensors of [K, V]
  std::vector<std::unique_ptr<Encoder>> encoders_;  ///< one per subspace
};

}  // namespace dart::pq
