#include "pq/encoder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "pq/kmeans.hpp"

namespace dart::pq {

void Encoder::encode_batch(const float* rows, std::size_t row_stride, std::size_t n,
                           std::uint32_t* codes_out, std::size_t code_stride) const {
  for (std::size_t i = 0; i < n; ++i) {
    codes_out[i * code_stride] = encode(rows + i * row_stride);
  }
}

ExactEncoder::ExactEncoder(nn::Tensor prototypes) : prototypes_(std::move(prototypes)) {
  if (prototypes_.ndim() != 2) throw std::invalid_argument("ExactEncoder: prototypes must be 2-D");
  const std::size_t k = prototypes_.dim(0), v = prototypes_.dim(1);
  half_norms_.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    const float* p = prototypes_.row(c);
    float acc = 0.0f;
    for (std::size_t j = 0; j < v; ++j) acc += p[j] * p[j];
    half_norms_[c] = 0.5f * acc;
  }
}

std::uint32_t ExactEncoder::encode(const float* row) const {
  const std::size_t k = prototypes_.dim(0), v = prototypes_.dim(1);
  const float* protos = prototypes_.data();
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (std::size_t c = 0; c < k; ++c) {
    const float* p = protos + c * v;
    float dot = 0.0f;
    for (std::size_t j = 0; j < v; ++j) dot += row[j] * p[j];
    const float d = half_norms_[c] - dot;
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  return best;
}

HashTreeEncoder::HashTreeEncoder(const nn::Tensor& prototypes) {
  if (prototypes.ndim() != 2) throw std::invalid_argument("HashTreeEncoder: prototypes must be 2-D");
  k_ = prototypes.dim(0);
  v_ = prototypes.dim(1);
  depth_ = 0;
  while ((1ULL << depth_) < k_) ++depth_;
  // Full heap with 2^depth leaves.
  const std::size_t node_count = (1ULL << (depth_ + 1)) - 1;
  hot_.assign(node_count, HotNode{});
  protos_.assign(node_count, -1);
  std::vector<std::uint32_t> all(k_);
  std::iota(all.begin(), all.end(), 0);
  build(std::move(all), prototypes, 0);
  // Uniform iff no leaf sits above the last level.
  uniform_ = true;
  const std::size_t internal = (1ULL << depth_) - 1;
  for (std::size_t i = 0; i < internal; ++i) {
    if (protos_[i] >= 0) {
      uniform_ = false;
      break;
    }
  }
}

HashTreeEncoder::HashTreeEncoder(std::vector<HotNode> nodes, std::vector<std::int32_t> leaves,
                                 std::size_t k, std::size_t v)
    : hot_(std::move(nodes)), protos_(std::move(leaves)), k_(k), v_(v) {
  if (k_ == 0 || v_ == 0) throw std::invalid_argument("HashTreeEncoder: empty tree");
  while ((1ULL << depth_) < k_) ++depth_;
  const std::size_t node_count = (1ULL << (depth_ + 1)) - 1;
  if (hot_.size() != node_count || protos_.size() != node_count) {
    throw std::invalid_argument("HashTreeEncoder: node arrays do not match prototype count");
  }
  // Walk safety: every reachable node must either be a valid leaf or an
  // internal node with a valid split dimension and in-bounds children.
  // Iterative DFS over the (at most node_count) reachable slots.
  std::vector<std::size_t> stack = {0};
  while (!stack.empty()) {
    const std::size_t idx = stack.back();
    stack.pop_back();
    const std::int32_t leaf = protos_[idx];
    if (leaf >= 0) {
      if (static_cast<std::size_t>(leaf) >= k_) {
        throw std::invalid_argument("HashTreeEncoder: leaf prototype id out of range");
      }
      continue;
    }
    if (2 * idx + 2 >= node_count) {
      throw std::invalid_argument("HashTreeEncoder: walk escapes the node heap");
    }
    if (hot_[idx].split_dim >= v_) {
      throw std::invalid_argument("HashTreeEncoder: split dimension out of range");
    }
    stack.push_back(2 * idx + 1);
    stack.push_back(2 * idx + 2);
  }
  uniform_ = true;
  const std::size_t internal = (1ULL << depth_) - 1;
  for (std::size_t i = 0; i < internal; ++i) {
    if (protos_[i] >= 0) {
      uniform_ = false;
      break;
    }
  }
}

void HashTreeEncoder::build(std::vector<std::uint32_t> protos, const nn::Tensor& prototypes,
                            std::size_t node_idx) {
  if (protos.size() == 1 || 2 * node_idx + 2 >= protos_.size()) {
    protos_[node_idx] = static_cast<std::int32_t>(protos.front());
    return;
  }
  // Pick the dimension with the largest variance among this node's protos.
  std::size_t best_dim = 0;
  double best_var = -1.0;
  for (std::size_t d = 0; d < v_; ++d) {
    double mean = 0.0;
    for (auto p : protos) mean += prototypes.at(p, d);
    mean /= static_cast<double>(protos.size());
    double var = 0.0;
    for (auto p : protos) {
      const double diff = prototypes.at(p, d) - mean;
      var += diff * diff;
    }
    if (var > best_var) {
      best_var = var;
      best_dim = d;
    }
  }
  // Median split (by sorted order, so ties still split evenly).
  std::sort(protos.begin(), protos.end(), [&](std::uint32_t a, std::uint32_t b) {
    return prototypes.at(a, best_dim) < prototypes.at(b, best_dim);
  });
  const std::size_t mid = protos.size() / 2;
  hot_[node_idx].split_dim = static_cast<std::uint32_t>(best_dim);
  hot_[node_idx].threshold =
      0.5f * (prototypes.at(protos[mid - 1], best_dim) + prototypes.at(protos[mid], best_dim));
  protos_[node_idx] = -1;
  std::vector<std::uint32_t> left(protos.begin(), protos.begin() + mid);
  std::vector<std::uint32_t> right(protos.begin() + mid, protos.end());
  build(std::move(left), prototypes, 2 * node_idx + 1);
  build(std::move(right), prototypes, 2 * node_idx + 2);
}

std::uint32_t HashTreeEncoder::encode(const float* row) const {
  const HotNode* hot = hot_.data();
  if (uniform_) {
    // Branchless fixed-depth walk: the step direction is an integer add.
    std::size_t idx = 0;
    for (std::size_t l = 0; l < depth_; ++l) {
      const HotNode nd = hot[idx];
      idx = 2 * idx + 1 + static_cast<std::size_t>(row[nd.split_dim] > nd.threshold);
    }
    return static_cast<std::uint32_t>(protos_[idx]);
  }
  std::size_t idx = 0;
  while (protos_[idx] < 0) {
    const HotNode nd = hot[idx];
    idx = 2 * idx + 1 + static_cast<std::size_t>(row[nd.split_dim] > nd.threshold);
  }
  return static_cast<std::uint32_t>(protos_[idx]);
}

void HashTreeEncoder::encode_batch(const float* rows, std::size_t row_stride, std::size_t n,
                                   std::uint32_t* codes_out, std::size_t code_stride) const {
  const HotNode* hot = hot_.data();
  const std::int32_t* leaf = protos_.data();
  if (uniform_) {
    // Level-synchronous walk over chunks of rows: the ~depth_ dependent
    // loads of different rows interleave, hiding each other's latency.
    constexpr std::size_t kChunk = 16;
    std::size_t idx[kChunk];
    for (std::size_t i0 = 0; i0 < n; i0 += kChunk) {
      const std::size_t c = std::min(kChunk, n - i0);
      for (std::size_t j = 0; j < c; ++j) idx[j] = 0;
      for (std::size_t l = 0; l < depth_; ++l) {
        for (std::size_t j = 0; j < c; ++j) {
          const HotNode nd = hot[idx[j]];
          const float x = rows[(i0 + j) * row_stride + nd.split_dim];
          idx[j] = 2 * idx[j] + 1 + static_cast<std::size_t>(x > nd.threshold);
        }
      }
      for (std::size_t j = 0; j < c; ++j) {
        codes_out[(i0 + j) * code_stride] = static_cast<std::uint32_t>(leaf[idx[j]]);
      }
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = rows + i * row_stride;
    std::size_t idx = 0;
    while (leaf[idx] < 0) {
      const HotNode nd = hot[idx];
      idx = 2 * idx + 1 + static_cast<std::size_t>(row[nd.split_dim] > nd.threshold);
    }
    codes_out[i * code_stride] = static_cast<std::uint32_t>(leaf[idx]);
  }
}

std::unique_ptr<Encoder> make_encoder(EncoderKind kind, const nn::Tensor& prototypes) {
  switch (kind) {
    case EncoderKind::kExact:
      return std::make_unique<ExactEncoder>(prototypes);
    case EncoderKind::kHashTree:
      return std::make_unique<HashTreeEncoder>(prototypes);
  }
  throw std::invalid_argument("make_encoder: unknown kind");
}

}  // namespace dart::pq
