#include "pq/encoder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "pq/kmeans.hpp"

namespace dart::pq {

ExactEncoder::ExactEncoder(nn::Tensor prototypes) : prototypes_(std::move(prototypes)) {
  if (prototypes_.ndim() != 2) throw std::invalid_argument("ExactEncoder: prototypes must be 2-D");
}

std::uint32_t ExactEncoder::encode(const float* row) const {
  return nearest_centroid(row, prototypes_);
}

HashTreeEncoder::HashTreeEncoder(const nn::Tensor& prototypes) {
  if (prototypes.ndim() != 2) throw std::invalid_argument("HashTreeEncoder: prototypes must be 2-D");
  k_ = prototypes.dim(0);
  v_ = prototypes.dim(1);
  depth_ = 0;
  while ((1ULL << depth_) < k_) ++depth_;
  // Full heap with 2^depth leaves.
  nodes_.assign((1ULL << (depth_ + 1)) - 1, Node{});
  std::vector<std::uint32_t> all(k_);
  std::iota(all.begin(), all.end(), 0);
  build(std::move(all), prototypes, 0);
}

void HashTreeEncoder::build(std::vector<std::uint32_t> protos, const nn::Tensor& prototypes,
                            std::size_t node_idx) {
  Node& node = nodes_[node_idx];
  if (protos.size() == 1 || 2 * node_idx + 2 >= nodes_.size()) {
    node.proto = static_cast<std::int32_t>(protos.front());
    return;
  }
  // Pick the dimension with the largest variance among this node's protos.
  std::size_t best_dim = 0;
  double best_var = -1.0;
  for (std::size_t d = 0; d < v_; ++d) {
    double mean = 0.0;
    for (auto p : protos) mean += prototypes.at(p, d);
    mean /= static_cast<double>(protos.size());
    double var = 0.0;
    for (auto p : protos) {
      const double diff = prototypes.at(p, d) - mean;
      var += diff * diff;
    }
    if (var > best_var) {
      best_var = var;
      best_dim = d;
    }
  }
  // Median split (by sorted order, so ties still split evenly).
  std::sort(protos.begin(), protos.end(), [&](std::uint32_t a, std::uint32_t b) {
    return prototypes.at(a, best_dim) < prototypes.at(b, best_dim);
  });
  const std::size_t mid = protos.size() / 2;
  node.split_dim = static_cast<std::uint32_t>(best_dim);
  node.threshold =
      0.5f * (prototypes.at(protos[mid - 1], best_dim) + prototypes.at(protos[mid], best_dim));
  std::vector<std::uint32_t> left(protos.begin(), protos.begin() + mid);
  std::vector<std::uint32_t> right(protos.begin() + mid, protos.end());
  build(std::move(left), prototypes, 2 * node_idx + 1);
  build(std::move(right), prototypes, 2 * node_idx + 2);
}

std::uint32_t HashTreeEncoder::encode(const float* row) const {
  std::size_t idx = 0;
  while (nodes_[idx].proto < 0) {
    const Node& n = nodes_[idx];
    idx = row[n.split_dim] <= n.threshold ? 2 * idx + 1 : 2 * idx + 2;
  }
  return static_cast<std::uint32_t>(nodes_[idx].proto);
}

std::unique_ptr<Encoder> make_encoder(EncoderKind kind, const nn::Tensor& prototypes) {
  switch (kind) {
    case EncoderKind::kExact:
      return std::make_unique<ExactEncoder>(prototypes);
    case EncoderKind::kHashTree:
      return std::make_unique<HashTreeEncoder>(prototypes);
  }
  throw std::invalid_argument("make_encoder: unknown kind");
}

}  // namespace dart::pq
