#include "pq/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace dart::pq {

namespace {
float sq_dist(const float* a, const float* b, std::size_t v) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < v; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}
}  // namespace

std::uint32_t nearest_centroid(const float* row, const nn::Tensor& centroids) {
  const std::size_t k = centroids.dim(0), v = centroids.dim(1);
  std::uint32_t best = 0;
  float best_d = std::numeric_limits<float>::max();
  for (std::size_t c = 0; c < k; ++c) {
    const float d = sq_dist(row, centroids.row(c), v);
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  return best;
}

KMeansResult kmeans(const nn::Tensor& data, std::size_t k, const KMeansOptions& opt) {
  if (data.ndim() != 2) throw std::invalid_argument("kmeans: data must be 2-D");
  if (k == 0) throw std::invalid_argument("kmeans: k must be positive");
  const std::size_t n = data.dim(0), v = data.dim(1);

  KMeansResult res;
  res.centroids = nn::Tensor({k, v});
  res.assignment.assign(n, 0);
  common::Rng rng(opt.seed);

  // --- k-means++ seeding -------------------------------------------------
  std::vector<float> min_d(n, std::numeric_limits<float>::max());
  {
    const std::size_t first = n > 0 ? static_cast<std::size_t>(rng.below(n)) : 0;
    std::copy(data.row(first), data.row(first) + v, res.centroids.row(0));
  }
  for (std::size_t c = 1; c < k; ++c) {
    const float* prev = res.centroids.row(c - 1);
    common::parallel_for(n, [&](std::size_t r0, std::size_t r1) {
      for (std::size_t i = r0; i < r1; ++i) {
        min_d[i] = std::min(min_d[i], sq_dist(data.row(i), prev, v));
      }
    });
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) total += min_d[i];
    if (total <= 0.0 || n < k) {
      // Degenerate data (or fewer rows than centroids): sample uniformly.
      const std::size_t j = static_cast<std::size_t>(rng.below(n));
      std::copy(data.row(j), data.row(j) + v, res.centroids.row(c));
      continue;
    }
    double target = rng.uniform(0.0, total), cum = 0.0;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      cum += min_d[i];
      if (cum >= target) {
        chosen = i;
        break;
      }
    }
    std::copy(data.row(chosen), data.row(chosen) + v, res.centroids.row(c));
  }

  // --- Lloyd iterations ---------------------------------------------------
  double prev_inertia = std::numeric_limits<double>::max();
  std::vector<double> sums(k * v);
  std::vector<std::size_t> counts(k);
  for (std::size_t iter = 0; iter < opt.max_iters; ++iter) {
    res.iterations = iter + 1;
    // Assignment (parallel over rows).
    std::vector<double> block_inertia(n > 0 ? 1 : 0);
    double inertia = 0.0;
    {
      std::vector<float> dist(n, 0.0f);
      common::parallel_for(n, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const float* row = data.row(i);
          std::uint32_t best = 0;
          float best_d = std::numeric_limits<float>::max();
          for (std::size_t c = 0; c < k; ++c) {
            const float d = sq_dist(row, res.centroids.row(c), v);
            if (d < best_d) {
              best_d = d;
              best = static_cast<std::uint32_t>(c);
            }
          }
          res.assignment[i] = best;
          dist[i] = best_d;
        }
      });
      for (std::size_t i = 0; i < n; ++i) inertia += dist[i];
    }
    res.inertia = inertia;

    // Update (serial accumulation; n*v work, cheap relative to assignment).
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = res.assignment[i];
      const float* row = data.row(i);
      double* s = sums.data() + static_cast<std::size_t>(c) * v;
      for (std::size_t j = 0; j < v; ++j) s[j] += row[j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty clusters from a random row to keep K live prototypes.
        const std::size_t j = static_cast<std::size_t>(rng.below(n));
        std::copy(data.row(j), data.row(j) + v, res.centroids.row(c));
        continue;
      }
      float* dst = res.centroids.row(c);
      const double inv = 1.0 / static_cast<double>(counts[c]);
      const double* s = sums.data() + c * v;
      for (std::size_t j = 0; j < v; ++j) dst[j] = static_cast<float>(s[j] * inv);
    }

    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          prev_inertia > 0.0 ? (prev_inertia - inertia) / prev_inertia : 0.0;
      if (rel >= 0.0 && rel < opt.tol) break;
    }
    prev_inertia = inertia;
  }
  return res;
}

}  // namespace dart::pq
