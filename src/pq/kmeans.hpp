// K-means clustering (k-means++ seeding + Lloyd iterations) — the prototype
// learner of product quantization (the paper's Eq. 5).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace dart::pq {

struct KMeansResult {
  nn::Tensor centroids;              ///< [K, V]
  std::vector<std::uint32_t> assignment;  ///< per-row nearest centroid
  double inertia = 0.0;              ///< sum of squared distances
  std::size_t iterations = 0;        ///< Lloyd iterations actually run
};

struct KMeansOptions {
  std::size_t max_iters = 12;
  double tol = 1e-4;   ///< relative inertia improvement stop criterion
  std::uint64_t seed = 1;
};

/// Clusters the rows of `data` ([N, V]) into `k` centroids.
///
/// Deterministic for a fixed seed. When N < k the surplus centroids are
/// duplicated from sampled rows (keeps downstream table shapes fixed).
/// Assignment and update steps are parallelized over rows.
KMeansResult kmeans(const nn::Tensor& data, std::size_t k, const KMeansOptions& opt = {});

/// Index of the centroid nearest to `row` (L2). `v` is the vector length.
std::uint32_t nearest_centroid(const float* row, const nn::Tensor& centroids);

}  // namespace dart::pq
