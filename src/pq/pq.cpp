#include "pq/pq.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace dart::pq {

ProductQuantizer::ProductQuantizer(const nn::Tensor& training, const PqConfig& config)
    : config_(config), dim_(training.dim(1)) {
  if (training.ndim() != 2) throw std::invalid_argument("ProductQuantizer: training must be 2-D");
  if (dim_ % config.num_subspaces != 0) {
    throw std::invalid_argument("ProductQuantizer: D must be divisible by C");
  }
  const std::size_t n = training.dim(0);
  const std::size_t v = sub_dim();
  prototypes_.reserve(config.num_subspaces);
  encoders_.reserve(config.num_subspaces);
  for (std::size_t c = 0; c < config.num_subspaces; ++c) {
    // Slice subspace c out of the training matrix.
    nn::Tensor sub({n, v});
    for (std::size_t i = 0; i < n; ++i) {
      const float* src = training.row(i) + c * v;
      float* dst = sub.row(i);
      std::copy(src, src + v, dst);
    }
    KMeansOptions km = config.kmeans;
    km.seed = common::derive_seed(config.kmeans.seed, c);
    KMeansResult res = kmeans(sub, config.num_prototypes, km);
    encoders_.push_back(make_encoder(config.encoder, res.centroids));
    prototypes_.push_back(std::move(res.centroids));
  }
}

std::vector<std::uint32_t> ProductQuantizer::encode(const float* vec) const {
  const std::size_t v = sub_dim();
  std::vector<std::uint32_t> code(config_.num_subspaces);
  for (std::size_t c = 0; c < config_.num_subspaces; ++c) {
    code[c] = encoders_[c]->encode(vec + c * v);
  }
  return code;
}

std::vector<std::uint32_t> ProductQuantizer::encode_all(const nn::Tensor& rows) const {
  const std::size_t n = rows.dim(0);
  const std::size_t c_count = config_.num_subspaces;
  const std::size_t v = sub_dim();
  std::vector<std::uint32_t> codes(n * c_count);
  common::parallel_for(n, [&](std::size_t r0, std::size_t r1) {
    // One virtual call per (subspace, block) — not per row.
    for (std::size_t c = 0; c < c_count; ++c) {
      encoders_[c]->encode_batch(rows.row(r0) + c * v, dim_, r1 - r0,
                                 codes.data() + r0 * c_count + c, c_count);
    }
  }, 64);
  return codes;
}

std::vector<float> ProductQuantizer::reconstruct(const float* vec) const {
  const std::size_t v = sub_dim();
  std::vector<float> out(dim_);
  const auto code = encode(vec);
  for (std::size_t c = 0; c < config_.num_subspaces; ++c) {
    const float* proto = prototypes_[c].row(code[c]);
    std::copy(proto, proto + v, out.begin() + c * v);
  }
  return out;
}

std::vector<float> ProductQuantizer::build_table(const float* weight) const {
  const std::size_t v = sub_dim();
  const std::size_t k = config_.num_prototypes;
  std::vector<float> table(config_.num_subspaces * k);
  for (std::size_t c = 0; c < config_.num_subspaces; ++c) {
    const float* wc = weight + c * v;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* proto = prototypes_[c].row(kk);
      float acc = 0.0f;
      for (std::size_t j = 0; j < v; ++j) acc += wc[j] * proto[j];
      table[c * k + kk] = acc;
    }
  }
  return table;
}

float ProductQuantizer::query(const std::vector<float>& table,
                              const std::vector<std::uint32_t>& code, std::size_t k) {
  float acc = 0.0f;
  for (std::size_t c = 0; c < code.size(); ++c) acc += table[c * k + code[c]];
  return acc;
}

}  // namespace dart::pq
