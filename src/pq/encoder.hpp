// Vector encoders: map a subvector to the index of its (approximately)
// nearest prototype (the paper's g function, Eq. 7).
//
// Two implementations:
//  * ExactEncoder — brute-force argmin over K prototypes (O(K·V)), evaluated
//    in the dot-product form argmin_k (||P_k||²/2 − x·P_k) with the prototype
//    half-norms precomputed at construction.
//  * HashTreeEncoder — balanced binary decision tree over the prototypes
//    with one scalar comparison per level (O(log K)), standing in for the
//    locality-sensitive hashing of MADDNESS [24] that the paper's latency
//    model assumes (Eq. 16: L_g = log K). Stored as structure-of-arrays and
//    walked iteratively.
//
// The batch entry point `encode_batch` is the inference hot path: one
// virtual call per (subspace, block of rows) instead of one per token.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace dart::pq {

/// Interface for per-subspace prototype encoders.
class Encoder {
 public:
  virtual ~Encoder() = default;

  /// Index in [0, K) of the chosen prototype for `row` (length V).
  virtual std::uint32_t encode(const float* row) const = 0;

  /// Encodes `n` rows starting at `rows`, consecutive rows `row_stride`
  /// floats apart (so a subspace of a wider matrix can be encoded without
  /// slicing). Writes codes to `codes_out[0], codes_out[code_stride], ...`.
  /// Must produce exactly the same codes as per-row `encode`.
  virtual void encode_batch(const float* rows, std::size_t row_stride, std::size_t n,
                            std::uint32_t* codes_out, std::size_t code_stride = 1) const;

  virtual std::size_t num_prototypes() const = 0;
  virtual std::size_t vec_dim() const = 0;

  /// Scalar comparisons performed per encode (the latency model's cost).
  virtual std::size_t comparisons_per_encode() const = 0;
};

/// Brute-force nearest prototype.
class ExactEncoder final : public Encoder {
 public:
  explicit ExactEncoder(nn::Tensor prototypes);

  // encode_batch: inherited per-row loop — the O(K·V) argmin dwarfs the
  // virtual call, so a dedicated batch loop buys nothing here.
  std::uint32_t encode(const float* row) const override;
  std::size_t num_prototypes() const override { return prototypes_.dim(0); }
  std::size_t vec_dim() const override { return prototypes_.dim(1); }
  std::size_t comparisons_per_encode() const override {
    return num_prototypes() * vec_dim();
  }

  const nn::Tensor& prototypes() const { return prototypes_; }

 private:
  nn::Tensor prototypes_;
  // half_norms_[k] = ||P_k||²/2, so argmin_k ||x−P_k||² = argmin_k
  // (half_norms_[k] − x·P_k): the ||x||² term is row-constant and drops out.
  std::vector<float> half_norms_;
};

/// Balanced binary hash tree: each internal node compares one input
/// dimension against a threshold; leaves hold prototype indices.
///
/// Built by recursively splitting the prototype set at the median of its
/// highest-variance dimension, so lookups cost exactly ceil(log2 K)
/// comparisons. This trades a small accuracy loss for O(log K) encoding
/// (ablated in bench_ablation_encoders).
class HashTreeEncoder final : public Encoder {
 public:
  /// One internal decision node of the flattened heap: compare
  /// `row[split_dim]` against `threshold` to pick a child. Public because
  /// the `.dart` artifact serializes the trained tree verbatim
  /// (`src/io/artifact.cpp`), keeping reloads bit-exact.
  struct HotNode {
    std::uint32_t split_dim = 0;
    float threshold = 0.0f;
  };

  explicit HashTreeEncoder(const nn::Tensor& prototypes);

  /// Deserialization constructor: adopts a previously built tree (the
  /// `nodes()` / `leaves()` arrays) verbatim. `k`/`v` are the prototype
  /// count and input width. Validates the heap invariants — array sizes,
  /// `split_dim < v`, leaf ids in [0, k), and that every root-to-leaf walk
  /// terminates inside the arrays — and throws std::invalid_argument on any
  /// violation, so a corrupted artifact cannot produce an encoder whose
  /// walk reads out of bounds.
  HashTreeEncoder(std::vector<HotNode> nodes, std::vector<std::int32_t> leaves, std::size_t k,
                  std::size_t v);

  std::uint32_t encode(const float* row) const override;
  void encode_batch(const float* rows, std::size_t row_stride, std::size_t n,
                    std::uint32_t* codes_out, std::size_t code_stride) const override;
  std::size_t num_prototypes() const override { return k_; }
  std::size_t vec_dim() const override { return v_; }
  std::size_t comparisons_per_encode() const override { return depth_; }

  /// Raw decision nodes (serialization; parallel to `leaves()`).
  const std::vector<HotNode>& nodes() const { return hot_; }
  /// Raw leaf prototype ids, -1 on internal nodes (serialization).
  const std::vector<std::int32_t>& leaves() const { return protos_; }

 private:
  void build(std::vector<std::uint32_t> protos, const nn::Tensor& prototypes,
             std::size_t node_idx);

  // Flattened heap (children of i at 2i+1/2i+2) split hot/cold: the walk
  // touches only the 8-byte {split_dim, threshold} pairs; leaf prototype
  // ids live in a separate array read once at the end. protos_[i] >= 0
  // marks a leaf.
  std::vector<HotNode> hot_;
  std::vector<std::int32_t> protos_;
  std::size_t k_ = 0;
  std::size_t v_ = 0;
  std::size_t depth_ = 0;
  // True when every leaf sits at exactly depth_ (K a power of two): the
  // walk then needs no per-step leaf test and runs branchless.
  bool uniform_ = false;
};

/// Factory choice used across the tabular stack.
enum class EncoderKind { kExact, kHashTree };

std::unique_ptr<Encoder> make_encoder(EncoderKind kind, const nn::Tensor& prototypes);

}  // namespace dart::pq
