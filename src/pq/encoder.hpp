// Vector encoders: map a subvector to the index of its (approximately)
// nearest prototype (the paper's g function, Eq. 7).
//
// Two implementations:
//  * ExactEncoder — brute-force argmin over K prototypes (O(K·V)).
//  * HashTreeEncoder — balanced binary decision tree over the prototypes
//    with one scalar comparison per level (O(log K)), standing in for the
//    locality-sensitive hashing of MADDNESS [24] that the paper's latency
//    model assumes (Eq. 16: L_g = log K).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"

namespace dart::pq {

/// Interface for per-subspace prototype encoders.
class Encoder {
 public:
  virtual ~Encoder() = default;

  /// Index in [0, K) of the chosen prototype for `row` (length V).
  virtual std::uint32_t encode(const float* row) const = 0;

  virtual std::size_t num_prototypes() const = 0;
  virtual std::size_t vec_dim() const = 0;

  /// Scalar comparisons performed per encode (the latency model's cost).
  virtual std::size_t comparisons_per_encode() const = 0;
};

/// Brute-force nearest prototype.
class ExactEncoder final : public Encoder {
 public:
  explicit ExactEncoder(nn::Tensor prototypes);

  std::uint32_t encode(const float* row) const override;
  std::size_t num_prototypes() const override { return prototypes_.dim(0); }
  std::size_t vec_dim() const override { return prototypes_.dim(1); }
  std::size_t comparisons_per_encode() const override {
    return num_prototypes() * vec_dim();
  }

  const nn::Tensor& prototypes() const { return prototypes_; }

 private:
  nn::Tensor prototypes_;
};

/// Balanced binary hash tree: each internal node compares one input
/// dimension against a threshold; leaves hold prototype indices.
///
/// Built by recursively splitting the prototype set at the median of its
/// highest-variance dimension, so lookups cost exactly ceil(log2 K)
/// comparisons. This trades a small accuracy loss for O(log K) encoding
/// (ablated in bench_ablation_encoders).
class HashTreeEncoder final : public Encoder {
 public:
  explicit HashTreeEncoder(const nn::Tensor& prototypes);

  std::uint32_t encode(const float* row) const override;
  std::size_t num_prototypes() const override { return k_; }
  std::size_t vec_dim() const override { return v_; }
  std::size_t comparisons_per_encode() const override { return depth_; }

 private:
  struct Node {
    // Internal node: split dimension + threshold; children at 2i+1 / 2i+2
    // in the flattened heap layout. Leaf: proto >= 0.
    std::uint32_t split_dim = 0;
    float threshold = 0.0f;
    std::int32_t proto = -1;
  };

  void build(std::vector<std::uint32_t> protos, const nn::Tensor& prototypes,
             std::size_t node_idx);

  std::vector<Node> nodes_;
  std::size_t k_ = 0;
  std::size_t v_ = 0;
  std::size_t depth_ = 0;
};

/// Factory choice used across the tabular stack.
enum class EncoderKind { kExact, kHashTree };

std::unique_ptr<Encoder> make_encoder(EncoderKind kind, const nn::Tensor& prototypes);

}  // namespace dart::pq
