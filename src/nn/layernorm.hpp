// Layer normalization over the last dimension with learned scale/shift.
//
// In the tabular model this layer is kept as-is (Algorithm 1, line 18): it is
// dimension-wise arithmetic with no matrix multiplication, so tabularization
// leaves it untouched and the complexity model charges it a constant latency.
#pragma once

#include "nn/module.hpp"

namespace dart::nn {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::size_t dim, float eps = 1e-5f, std::string name = "ln");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }

  /// Stateless apply with current parameters.
  Tensor apply(const Tensor& x) const;

  std::size_t dim() const { return dim_; }
  const Tensor& gamma() const { return gamma_.value; }
  const Tensor& beta() const { return beta_.value; }

 private:
  std::size_t dim_;
  float eps_;
  Param gamma_;  // [dim]
  Param beta_;   // [dim]
  Tensor cached_xhat_;  // normalized input, flattened [m, dim]
  Tensor cached_inv_std_;  // [m]
  std::vector<std::size_t> cached_shape_;
};

}  // namespace dart::nn
