#include "nn/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"

namespace dart::nn {

namespace {
std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshape: numel mismatch " + shape_str());
  }
  shape_ = std::move(new_shape);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor& Tensor::operator+=(const Tensor& other) {
  if (other.numel() != numel()) throw std::invalid_argument("Tensor::+=: numel mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (other.numel() != numel()) throw std::invalid_argument("Tensor::-=: numel mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

double Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0); }

double Tensor::mean() const { return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size()); }

float Tensor::abs_max() const {
  float m = 0.0f;
  for (auto v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::randn(std::vector<std::size_t> shape, float stddev, std::uint64_t seed) {
  Tensor t(std::move(shape));
  common::Rng rng(seed);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, static_cast<double>(stddev)));
  }
  return t;
}

Tensor Tensor::rand_uniform(std::vector<std::size_t> shape, float bound, std::uint64_t seed) {
  Tensor t(std::move(shape));
  common::Rng rng(seed);
  const double b = static_cast<double>(bound);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-b, b));
  }
  return t;
}

}  // namespace dart::nn
