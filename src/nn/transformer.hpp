// Transformer encoder and the attention-based memory-access prediction model
// of the paper's Fig. 6: segmented address + PC inputs -> input linears ->
// encoder layers (MSA + FFN, post-LN residual) -> per-patch output linear ->
// mean pool -> delta-bitmap logits.
#pragma once

#include <memory>
#include <vector>

#include "nn/attention.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace dart::nn {

/// Position-wise feed-forward network (Eq. 2): Linear -> ReLU -> Linear.
class FeedForward : public Module {
 public:
  FeedForward(std::size_t dim, std::size_t hidden, std::uint64_t seed,
              std::string name = "ffn");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  Linear& hidden_layer() { return *hidden_; }
  Linear& output_layer() { return *out_; }
  const Linear& hidden_layer() const { return *hidden_; }
  const Linear& output_layer() const { return *out_; }

 private:
  std::unique_ptr<Linear> hidden_;
  std::unique_ptr<Linear> out_;
  Tensor cached_pre_relu_;
};

/// Post-LN encoder layer: x1 = LN1(x + MSA(x)); y = LN2(x1 + FFN(x1)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(std::size_t dim, std::size_t heads, std::size_t ffn_hidden,
                          std::uint64_t seed, std::string name = "enc");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  MultiHeadSelfAttention& msa() { return *msa_; }
  FeedForward& ffn() { return *ffn_; }
  LayerNorm& ln1() { return *ln1_; }
  LayerNorm& ln2() { return *ln2_; }
  const MultiHeadSelfAttention& msa() const { return *msa_; }
  const FeedForward& ffn() const { return *ffn_; }
  const LayerNorm& ln1() const { return *ln1_; }
  const LayerNorm& ln2() const { return *ln2_; }

 private:
  std::unique_ptr<MultiHeadSelfAttention> msa_;
  std::unique_ptr<FeedForward> ffn_;
  std::unique_ptr<LayerNorm> ln1_;
  std::unique_ptr<LayerNorm> ln2_;
};

/// Architecture hyper-parameters (the paper's Table I notation).
struct ModelConfig {
  std::size_t seq_len = 8;       ///< TI / TT — history length (= patches)
  std::size_t addr_dim = 7;      ///< DI for the segmented address input
  std::size_t pc_dim = 7;        ///< segment count of the PC input
  std::size_t dim = 32;          ///< DA — attention (hidden) dimension
  std::size_t ffn_dim = 64;      ///< DF — feed-forward hidden dimension
  std::size_t out_dim = 64;      ///< DO — delta bitmap size
  std::size_t heads = 2;         ///< H
  std::size_t layers = 1;        ///< L
};

/// The full attention-based multi-label memory-access predictor.
///
/// Inputs are two aligned [B, T, S] tensors (segmented addresses and
/// segmented PCs); the output is [B, DO] logits over the delta bitmap.
class AddressPredictor {
 public:
  AddressPredictor(const ModelConfig& config, std::uint64_t seed);

  /// Forward pass producing logits; caches activations for backward.
  Tensor forward(const Tensor& addr, const Tensor& pc);

  /// Backward from dL/dlogits; accumulates all parameter gradients.
  void backward(const Tensor& d_logits);

  /// Stateless forward (no caching) — used for evaluation.
  Tensor predict(const Tensor& addr, const Tensor& pc);

  std::vector<Param*> params();
  void zero_grad();

  const ModelConfig& config() const { return config_; }

  Linear& addr_embed() { return *addr_embed_; }
  Linear& pc_embed() { return *pc_embed_; }
  Param& pos_encoding() { return pos_; }
  std::vector<std::unique_ptr<TransformerEncoderLayer>>& encoder_layers() { return layers_; }
  LayerNorm& final_ln() { return *final_ln_; }
  Linear& head() { return *head_; }

  /// Total number of scalar parameters.
  std::size_t num_params();

 private:
  Tensor embed(const Tensor& addr, const Tensor& pc);

  ModelConfig config_;
  std::unique_ptr<Linear> addr_embed_;
  std::unique_ptr<Linear> pc_embed_;
  Param pos_;  // learned positional encoding [T, D]
  std::vector<std::unique_ptr<TransformerEncoderLayer>> layers_;
  std::unique_ptr<LayerNorm> final_ln_;
  std::unique_ptr<Linear> head_;

  std::size_t cached_b_ = 0;
  Tensor cached_addr_, cached_pc_;
};

}  // namespace dart::nn
