// Multi-headed self-attention (the paper's Eq. 3-4).
//
// One fused QKV projection (a single Linear D -> 3D, matching the
// Sl(TT, 3*H*DA) term of the paper's Eq. 23) followed by per-head scaled
// dot-product attention and an output projection.
#pragma once

#include <memory>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace dart::nn {

class MultiHeadSelfAttention : public Module {
 public:
  /// `dim` must be divisible by `heads`.
  MultiHeadSelfAttention(std::size_t dim, std::size_t heads, std::uint64_t seed,
                         std::string name = "msa");

  /// x: [B, T, D] -> [B, T, D].
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;

  std::size_t dim() const { return dim_; }
  std::size_t heads() const { return heads_; }
  std::size_t head_dim() const { return dim_ / heads_; }

  Linear& qkv_proj() { return *qkv_; }
  Linear& out_proj() { return *out_; }
  const Linear& qkv_proj() const { return *qkv_; }
  const Linear& out_proj() const { return *out_; }

  /// Stateless attention core given already-projected QKV ([B,T,3D]) —
  /// used by the tabularization reference path. Returns concat(head outputs)
  /// BEFORE the output projection.
  Tensor attention_core(const Tensor& qkv) const;

 private:
  std::size_t dim_;
  std::size_t heads_;
  std::unique_ptr<Linear> qkv_;
  std::unique_ptr<Linear> out_;

  // Cached activations for backward.
  Tensor cached_qkv_;    // [B, T, 3D]
  Tensor cached_attn_;   // [B*H, T, T] softmax probabilities
  std::size_t cached_b_ = 0, cached_t_ = 0;
};

}  // namespace dart::nn
