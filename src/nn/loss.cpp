#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

#include "nn/ops.hpp"

namespace dart::nn {

namespace {
constexpr float kEps = 1e-7f;

void check_same(const Tensor& a, const Tensor& b, const char* where) {
  if (a.numel() != b.numel()) {
    throw std::invalid_argument(std::string(where) + ": size mismatch");
  }
}
}  // namespace

double bce_with_logits(const Tensor& logits, const Tensor& targets, Tensor& d_logits,
                       float pos_weight) {
  check_same(logits, targets, "bce_with_logits");
  if (d_logits.numel() != logits.numel()) d_logits = Tensor(logits.shape());
  const std::size_t n = logits.numel();
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float z = logits[i];
    const float y = targets[i];
    const float w = y >= 0.5f ? pos_weight : 1.0f;
    // Numerically stable log(1 + e^-|z|) formulation.
    const float abs_z = std::fabs(z);
    loss += w * (std::max(z, 0.0f) - z * y + std::log1p(std::exp(-abs_z)));
    // d/dz of w * BCE: positives get w*(sigma-1), negatives sigma.
    const float sig = ops::sigmoid(z);
    d_logits[i] = (y >= 0.5f ? w * (sig - 1.0f) : sig) * inv_n;
  }
  return loss / static_cast<double>(n);
}

double mse_loss(const Tensor& pred, const Tensor& target, Tensor& d_pred) {
  check_same(pred, target, "mse_loss");
  if (d_pred.numel() != pred.numel()) d_pred = Tensor(pred.shape());
  const std::size_t n = pred.numel();
  double loss = 0.0;
  const float scale = 2.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    loss += static_cast<double>(d) * d;
    d_pred[i] = scale * d;
  }
  return loss / static_cast<double>(n);
}

Tensor t_sigmoid(const Tensor& logits, float temperature) {
  Tensor out(logits.shape());
  const float inv_t = 1.0f / temperature;
  for (std::size_t i = 0; i < logits.numel(); ++i) out[i] = ops::sigmoid(logits[i] * inv_t);
  return out;
}

double kd_loss(const Tensor& student_logits, const Tensor& teacher_logits, float temperature,
               Tensor& d_student_logits) {
  check_same(student_logits, teacher_logits, "kd_loss");
  if (d_student_logits.numel() != student_logits.numel()) {
    d_student_logits = Tensor(student_logits.shape());
  }
  const std::size_t n = student_logits.numel();
  const float inv_t = 1.0f / temperature;
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    float pt = ops::sigmoid(teacher_logits[i] * inv_t);
    float ps = ops::sigmoid(student_logits[i] * inv_t);
    pt = std::min(std::max(pt, kEps), 1.0f - kEps);
    ps = std::min(std::max(ps, kEps), 1.0f - kEps);
    // Binary KL( (pt, 1-pt) || (ps, 1-ps) ).
    loss += pt * std::log(pt / ps) + (1.0f - pt) * std::log((1.0f - pt) / (1.0f - ps));
    // d/dzs = (ps - pt) / T   (the classic distillation gradient), averaged.
    d_student_logits[i] = (ps - pt) * inv_t * inv_n;
  }
  return loss / static_cast<double>(n);
}

double distillation_loss(const Tensor& student_logits, const Tensor& teacher_logits,
                         const Tensor& targets, float temperature, float lambda,
                         Tensor& d_logits) {
  Tensor d_bce, d_kd;
  const double bce = bce_with_logits(student_logits, targets, d_bce);
  const double kd = kd_loss(student_logits, teacher_logits, temperature, d_kd);
  if (d_logits.numel() != student_logits.numel()) d_logits = Tensor(student_logits.shape());
  for (std::size_t i = 0; i < d_logits.numel(); ++i) {
    d_logits[i] = lambda * d_kd[i] + (1.0f - lambda) * d_bce[i];
  }
  return lambda * kd + (1.0 - lambda) * bce;
}

}  // namespace dart::nn
