#include "nn/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "common/thread_pool.hpp"

namespace dart::nn::ops {

namespace {
void check2d(const Tensor& t, const char* name) {
  if (t.ndim() != 2) throw std::invalid_argument(std::string(name) + ": expected 2-D tensor");
}
}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  check2d(a, "matmul A");
  check2d(b, "matmul B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dim mismatch");
  if (c.ndim() != 2 || c.dim(0) != m || c.dim(1) != n) c = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  common::parallel_for(
      m,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          float* crow = pc + i * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
          const float* arow = pa + i * k;
          // ikj order: inner loop over j is contiguous in B and C, which the
          // compiler auto-vectorizes.
          for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            const float* brow = pb + kk * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      16);
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  check2d(a, "matmul_nt A");
  check2d(b, "matmul_nt B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  if (b.dim(1) != k) throw std::invalid_argument("matmul_nt: inner dim mismatch");
  if (c.ndim() != 2 || c.dim(0) != m || c.dim(1) != n) c = Tensor({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  common::parallel_for(
      m,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const float* arow = pa + i * k;
          float* crow = pc + i * n;
          for (std::size_t j = 0; j < n; ++j) {
            const float* brow = pb + j * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
            crow[j] = acc;
          }
        }
      },
      16);
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  check2d(a, "matmul_tn A");
  check2d(b, "matmul_tn B");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != m) throw std::invalid_argument("matmul_tn: outer dim mismatch");
  if (c.ndim() != 2 || c.dim(0) != k || c.dim(1) != n) c = Tensor({k, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  common::parallel_for(
      k,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          float* crow = pc + i * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
          for (std::size_t mm = 0; mm < m; ++mm) {
            const float av = pa[mm * k + i];
            const float* brow = pb + mm * n;
            for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      },
      16);
}

void linear_forward(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& y) {
  check2d(x, "linear x");
  check2d(w, "linear W");
  const std::size_t m = x.dim(0), din = x.dim(1), dout = w.dim(0);
  if (w.dim(1) != din) throw std::invalid_argument("linear_forward: W/x dim mismatch");
  if (b.numel() != dout) throw std::invalid_argument("linear_forward: bias dim mismatch");
  matmul_nt(x, w, y);
  const float* pb = b.data();
  float* py = y.data();
  common::parallel_for(
      m,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          float* yrow = py + i * dout;
          for (std::size_t j = 0; j < dout; ++j) yrow[j] += pb[j];
        }
      },
      64);
}

void softmax_rows(Tensor& x) {
  check2d(x, "softmax x");
  const std::size_t m = x.dim(0), n = x.dim(1);
  float* px = x.data();
  common::parallel_for(
      m,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          float* row = px + i * n;
          float mx = row[0];
          for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
          float denom = 0.0f;
          for (std::size_t j = 0; j < n; ++j) {
            row[j] = std::exp(row[j] - mx);
            denom += row[j];
          }
          const float inv = 1.0f / denom;
          for (std::size_t j = 0; j < n; ++j) row[j] *= inv;
        }
      },
      64);
}

float sigmoid(float x) {
  if (x >= 0.0f) {
    return 1.0f / (1.0f + std::exp(-x));
  }
  const float e = std::exp(x);
  return e / (1.0f + e);
}

void relu(const Tensor& x, Tensor& y) {
  if (y.numel() != x.numel()) y = Tensor(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void sigmoid(const Tensor& x, Tensor& y) {
  if (y.numel() != x.numel()) y = Tensor(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) y[i] = sigmoid(x[i]);
}

void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx) {
  if (dx.numel() != x.numel()) dx = Tensor(x.shape());
  for (std::size_t i = 0; i < x.numel(); ++i) dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
}

double cosine_similarity(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel() || a.numel() == 0) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace dart::nn::ops
