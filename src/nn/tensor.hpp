// Minimal dense float32 tensor used throughout the training stack.
//
// Row-major contiguous storage, up to 4 dimensions. This is deliberately a
// value type (deep copy) — model activations are cached per layer during
// forward for use in backward, and value semantics keep ownership trivial
// (C++ Core Guidelines P.9 / R.1).
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace dart::nn {

class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor with the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  /// Number of dimensions.
  std::size_t ndim() const { return shape_.size(); }
  /// Extent of dimension i.
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  const std::vector<std::size_t>& shape() const { return shape_; }
  /// Total number of elements.
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float& at(std::size_t i, std::size_t j) {
    assert(ndim() == 2);
    return data_[i * shape_[1] + j];
  }
  float at(std::size_t i, std::size_t j) const {
    assert(ndim() == 2);
    return data_[i * shape_[1] + j];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k) {
    assert(ndim() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(std::size_t i, std::size_t j, std::size_t k) const {
    assert(ndim() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Pointer to row i of a 2-D tensor (or to matrix i of a 3-D tensor).
  float* row(std::size_t i) {
    return data_.data() + i * (numel() / shape_[0]);
  }
  const float* row(std::size_t i) const {
    return data_.data() + i * (numel() / shape_[0]);
  }

  /// Returns a tensor with the same data and a new shape (numel must match).
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// In-place reshape (numel must match).
  void reshape(std::vector<std::size_t> new_shape);

  void fill(float v);
  void zero() { fill(0.0f); }

  /// Elementwise in-place operations.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  /// Sum of all elements.
  double sum() const;
  /// Mean of all elements.
  double mean() const;
  /// Max |x|.
  float abs_max() const;

  /// Human-readable "[a, b, c]" shape string for error messages.
  std::string shape_str() const;

  /// Gaussian init N(0, stddev) with the given seed.
  static Tensor randn(std::vector<std::size_t> shape, float stddev, std::uint64_t seed);
  /// Uniform init in [-bound, bound].
  static Tensor rand_uniform(std::vector<std::size_t> shape, float bound, std::uint64_t seed);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace dart::nn
