#include "nn/attention.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/ops.hpp"

namespace dart::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(std::size_t dim, std::size_t heads,
                                               std::uint64_t seed, std::string name)
    : dim_(dim), heads_(heads) {
  if (dim % heads != 0) throw std::invalid_argument("MSA: dim must be divisible by heads");
  qkv_ = std::make_unique<Linear>(dim, 3 * dim, common::derive_seed(seed, 1), name + ".qkv");
  out_ = std::make_unique<Linear>(dim, dim, common::derive_seed(seed, 2), name + ".out");
}

std::vector<Param*> MultiHeadSelfAttention::params() {
  return collect_params({qkv_.get(), out_.get()});
}

namespace {

/// Copies head `h` of Q/K/V (`which` in {0,1,2}) for batch `b` out of the
/// fused [B,T,3D] projection into a contiguous [T,Dh] matrix.
void gather_head(const Tensor& qkv, std::size_t b, std::size_t h, int which, std::size_t t_len,
                 std::size_t dim, std::size_t dh, Tensor& out) {
  if (out.ndim() != 2 || out.dim(0) != t_len || out.dim(1) != dh) out = Tensor({t_len, dh});
  const std::size_t col0 = static_cast<std::size_t>(which) * dim + h * dh;
  for (std::size_t t = 0; t < t_len; ++t) {
    const float* src = qkv.data() + (b * t_len + t) * 3 * dim + col0;
    float* dst = out.row(t);
    for (std::size_t j = 0; j < dh; ++j) dst[j] = src[j];
  }
}

/// Adds a contiguous [T,Dh] head gradient back into the strided fused layout.
void scatter_head_add(Tensor& dqkv, std::size_t b, std::size_t h, int which, std::size_t t_len,
                      std::size_t dim, std::size_t dh, const Tensor& grad) {
  const std::size_t col0 = static_cast<std::size_t>(which) * dim + h * dh;
  for (std::size_t t = 0; t < t_len; ++t) {
    float* dst = dqkv.data() + (b * t_len + t) * 3 * dim + col0;
    const float* src = grad.row(t);
    for (std::size_t j = 0; j < dh; ++j) dst[j] += src[j];
  }
}

}  // namespace

Tensor MultiHeadSelfAttention::attention_core(const Tensor& qkv) const {
  const std::size_t b_sz = qkv.dim(0), t_len = qkv.dim(1);
  const std::size_t dh = head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor concat({b_sz, t_len, dim_});
  common::parallel_for_each(b_sz * heads_, [&](std::size_t bh) {
    const std::size_t b = bh / heads_, h = bh % heads_;
    Tensor q, k, v, scores, o;
    gather_head(qkv, b, h, 0, t_len, dim_, dh, q);
    gather_head(qkv, b, h, 1, t_len, dim_, dh, k);
    gather_head(qkv, b, h, 2, t_len, dim_, dh, v);
    ops::matmul_nt(q, k, scores);
    scores *= scale;
    ops::softmax_rows(scores);
    ops::matmul(scores, v, o);
    for (std::size_t t = 0; t < t_len; ++t) {
      float* dst = concat.data() + (b * t_len + t) * dim_ + h * dh;
      const float* src = o.row(t);
      for (std::size_t j = 0; j < dh; ++j) dst[j] = src[j];
    }
  }, 1);
  return concat;
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x) {
  if (x.ndim() != 3 || x.dim(2) != dim_) {
    throw std::invalid_argument("MSA::forward expects [B,T,D], got " + x.shape_str());
  }
  cached_b_ = x.dim(0);
  cached_t_ = x.dim(1);
  cached_qkv_ = qkv_->forward(x);  // [B,T,3D]
  cached_attn_ = Tensor({cached_b_ * heads_, cached_t_, cached_t_});

  const std::size_t dh = head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  Tensor concat({cached_b_, cached_t_, dim_});
  common::parallel_for_each(cached_b_ * heads_, [&](std::size_t bh) {
    const std::size_t b = bh / heads_, h = bh % heads_;
    Tensor q, k, v, scores, o;
    gather_head(cached_qkv_, b, h, 0, cached_t_, dim_, dh, q);
    gather_head(cached_qkv_, b, h, 1, cached_t_, dim_, dh, k);
    gather_head(cached_qkv_, b, h, 2, cached_t_, dim_, dh, v);
    ops::matmul_nt(q, k, scores);
    scores *= scale;
    ops::softmax_rows(scores);
    // Cache attention probabilities for backward.
    float* dst = cached_attn_.data() + bh * cached_t_ * cached_t_;
    for (std::size_t i = 0; i < cached_t_ * cached_t_; ++i) dst[i] = scores[i];
    ops::matmul(scores, v, o);
    for (std::size_t t = 0; t < cached_t_; ++t) {
      float* cdst = concat.data() + (b * cached_t_ + t) * dim_ + h * dh;
      const float* src = o.row(t);
      for (std::size_t j = 0; j < dh; ++j) cdst[j] = src[j];
    }
  }, 1);
  return out_->forward(concat);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  // Through the output projection.
  Tensor d_concat = out_->backward(grad_out);  // [B,T,D]
  const std::size_t dh = head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  Tensor dqkv({cached_b_, cached_t_, 3 * dim_});
  common::parallel_for_each(cached_b_ * heads_, [&](std::size_t bh) {
    const std::size_t b = bh / heads_, h = bh % heads_;
    // Gather dO for this head.
    Tensor d_o({cached_t_, dh});
    for (std::size_t t = 0; t < cached_t_; ++t) {
      const float* src = d_concat.data() + (b * cached_t_ + t) * dim_ + h * dh;
      float* dst = d_o.row(t);
      for (std::size_t j = 0; j < dh; ++j) dst[j] = src[j];
    }
    Tensor q, k, v;
    gather_head(cached_qkv_, b, h, 0, cached_t_, dim_, dh, q);
    gather_head(cached_qkv_, b, h, 1, cached_t_, dim_, dh, k);
    gather_head(cached_qkv_, b, h, 2, cached_t_, dim_, dh, v);
    // A (softmax probs) for this head.
    Tensor a({cached_t_, cached_t_});
    const float* asrc = cached_attn_.data() + bh * cached_t_ * cached_t_;
    for (std::size_t i = 0; i < cached_t_ * cached_t_; ++i) a[i] = asrc[i];

    // dV = A^T dO ; dA = dO V^T
    Tensor dv, da;
    ops::matmul_tn(a, d_o, dv);
    ops::matmul_nt(d_o, v, da);
    // Softmax backward: dS = A ⊙ (dA - rowsum(dA ⊙ A))
    Tensor ds({cached_t_, cached_t_});
    for (std::size_t i = 0; i < cached_t_; ++i) {
      const float* arow = a.row(i);
      const float* darow = da.row(i);
      float dot = 0.0f;
      for (std::size_t j = 0; j < cached_t_; ++j) dot += arow[j] * darow[j];
      float* dsrow = ds.row(i);
      for (std::size_t j = 0; j < cached_t_; ++j) dsrow[j] = arow[j] * (darow[j] - dot) * scale;
    }
    // dQ = dS K ; dK = dS^T Q
    Tensor dq, dk;
    ops::matmul(ds, k, dq);
    ops::matmul_tn(ds, q, dk);
    scatter_head_add(dqkv, b, h, 0, cached_t_, dim_, dh, dq);
    scatter_head_add(dqkv, b, h, 1, cached_t_, dim_, dh, dk);
    scatter_head_add(dqkv, b, h, 2, cached_t_, dim_, dh, dv);
  }, 1);

  return qkv_->backward(dqkv);
}

}  // namespace dart::nn
