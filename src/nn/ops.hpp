// Threaded dense kernels: matmul variants, row softmax, activations.
//
// These are the only hot loops in training; everything else composes them.
// Parallelism: `common::parallel_for` over output rows — each worker writes a
// disjoint row range, so no synchronization is needed inside the loops.
#pragma once

#include "nn/tensor.hpp"

namespace dart::nn::ops {

/// C[m,n] = A[m,k] * B[k,n]. C is overwritten.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C[m,n] = A[m,k] * B[n,k]^T  (B given row-major as [n,k]).
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c);

/// C[k,n] = A[m,k]^T * B[m,n].
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// y = x * W^T + b applied to every row of x: x[m, din], W[dout, din],
/// b[dout], y[m, dout]. This is the paper's Linear (Eq. 1) with the batch
/// and sequence dimensions flattened into m.
void linear_forward(const Tensor& x, const Tensor& w, const Tensor& b, Tensor& y);

/// Row-wise softmax over the last dimension of a 2-D tensor, in place.
void softmax_rows(Tensor& x);

/// Numerically-stable sigmoid.
float sigmoid(float x);

/// Elementwise activations (out-of-place).
void relu(const Tensor& x, Tensor& y);
void sigmoid(const Tensor& x, Tensor& y);

/// dL/dx for relu: dy masked by x > 0.
void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx);

/// Cosine similarity between two equally-sized tensors (flattened).
double cosine_similarity(const Tensor& a, const Tensor& b);

}  // namespace dart::nn::ops
