// Fully-connected layer: y = x W^T + b (the paper's Eq. 1, with weight
// stored as W[out, in] to match the tabularization kernel's layout).
#pragma once

#include "nn/module.hpp"

namespace dart::nn {

class Linear : public Module {
 public:
  /// Xavier-uniform initialized layer mapping `in_dim` -> `out_dim`.
  Linear(std::size_t in_dim, std::size_t out_dim, std::uint64_t seed,
         std::string name = "linear");

  /// Accepts [m, in] or [b, t, in]; returns the matching [.., out] shape.
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

  const Tensor& weight() const { return weight_.value; }
  const Tensor& bias() const { return bias_.value; }
  Tensor& mutable_weight() { return weight_.value; }
  Tensor& mutable_bias() { return bias_.value; }

  /// Stateless apply with the current weights (used by fine-tuning and the
  /// tabularization reference path); does not touch cached activations.
  Tensor apply(const Tensor& x) const;

 private:
  std::size_t in_dim_;
  std::size_t out_dim_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor cached_x_;  // flattened [m, in]
  std::vector<std::size_t> cached_shape_;
};

}  // namespace dart::nn
