// Supervised dataset for memory-access prediction: aligned segmented-address
// and segmented-PC input windows plus delta-bitmap labels (§VI-A).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace dart::nn {

struct Dataset {
  Tensor addr;    ///< [N, T, S_addr] normalized address segments
  Tensor pc;      ///< [N, T, S_pc] normalized PC segments
  Tensor labels;  ///< [N, DO] delta bitmap (0/1)

  std::size_t size() const { return addr.empty() ? 0 : addr.dim(0); }

  /// Copies rows [begin, end) into a contiguous mini-batch.
  Dataset slice(std::size_t begin, std::size_t end) const;

  /// Deterministically shuffles all three tensors with the same permutation.
  void shuffle(std::uint64_t seed);

  /// Splits into (train, test) at `train_frac` (no shuffling; callers shuffle
  /// first if they want a random split — trace data is temporally ordered and
  /// the paper-style protocol trains on the prefix, tests on the suffix).
  std::pair<Dataset, Dataset> split(double train_frac) const;
};

}  // namespace dart::nn
