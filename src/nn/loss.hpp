// Loss functions for multi-label training and knowledge distillation.
//
// BCE-with-logits is the paper's training loss (§VI-B); the KD loss is the
// paper's Eq. 24-25: T-Sigmoid softened probabilities compared with a
// per-label binary KL divergence, mixed with BCE by λ.
#pragma once

#include "nn/tensor.hpp"

namespace dart::nn {

/// Binary cross-entropy over logits. Returns mean loss; `d_logits` (same
/// shape as `logits`) receives dL/dlogits. `pos_weight` scales the loss and
/// gradient of positive labels — delta bitmaps are extremely sparse on
/// irregular workloads (mcf sets <1% of bits), and unweighted BCE collapses
/// to the all-negative predictor there.
double bce_with_logits(const Tensor& logits, const Tensor& targets, Tensor& d_logits,
                       float pos_weight = 1.0f);

/// Mean squared error. Returns mean loss; fills dL/dpred.
double mse_loss(const Tensor& pred, const Tensor& target, Tensor& d_pred);

/// T-Sigmoid (Eq. 24): sigmoid(y / temperature), elementwise.
Tensor t_sigmoid(const Tensor& logits, float temperature);

/// Knowledge-distillation loss (Eq. 25): per-label binary KL between the
/// T-Sigmoid outputs of teacher and student, averaged; gradient flows to the
/// student logits only. Returns the KD loss term.
double kd_loss(const Tensor& student_logits, const Tensor& teacher_logits, float temperature,
               Tensor& d_student_logits);

/// Combined loss: λ * KD + (1-λ) * BCE (Eq. 25). Fills d_logits with the
/// mixed gradient and returns the combined scalar loss.
double distillation_loss(const Tensor& student_logits, const Tensor& teacher_logits,
                         const Tensor& targets, float temperature, float lambda,
                         Tensor& d_logits);

}  // namespace dart::nn
