#include "nn/optimizer.hpp"

#include <cmath>

namespace dart::nn {

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (Param* p : params_) velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param* p = params_[pi];
    if (momentum_ > 0.0f) {
      Tensor& vel = velocity_[pi];
      for (std::size_t i = 0; i < p->value.numel(); ++i) {
        vel[i] = momentum_ * vel[i] + p->grad[i];
        p->value[i] -= lr_ * vel[i];
      }
    } else {
      for (std::size_t i = 0; i < p->value.numel(); ++i) {
        p->value[i] -= lr_ * p->grad[i];
      }
    }
  }
}

void Sgd::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2, float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Param* p = params_[pi];
    Tensor& m = m_[pi];
    Tensor& v = v_[pi];
    for (std::size_t i = 0; i < p->value.numel(); ++i) {
      const float g = p->grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::zero_grad() {
  for (Param* p : params_) p->zero_grad();
}

}  // namespace dart::nn
