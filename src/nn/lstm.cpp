#include "nn/lstm.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/ops.hpp"

namespace dart::nn {

Lstm::Lstm(std::size_t in_dim, std::size_t hidden_dim, std::uint64_t seed, std::string name)
    : in_dim_(in_dim), hidden_(hidden_dim) {
  const float bx = std::sqrt(6.0f / static_cast<float>(in_dim + 4 * hidden_dim));
  const float bh = std::sqrt(6.0f / static_cast<float>(hidden_dim + 4 * hidden_dim));
  wx_ = Param(Tensor::rand_uniform({4 * hidden_dim, in_dim}, bx, common::derive_seed(seed, 1)),
              name + ".wx");
  wh_ = Param(Tensor::rand_uniform({4 * hidden_dim, hidden_dim}, bh, common::derive_seed(seed, 2)),
              name + ".wh");
  bias_ = Param(Tensor({4 * hidden_dim}), name + ".bias");
  // Forget-gate bias init to 1 (standard trick for gradient flow).
  for (std::size_t j = hidden_dim; j < 2 * hidden_dim; ++j) bias_.value[j] = 1.0f;
}

Tensor Lstm::forward(const Tensor& x) {
  if (x.ndim() != 3 || x.dim(2) != in_dim_) {
    throw std::invalid_argument("Lstm::forward expects [B,T,Din], got " + x.shape_str());
  }
  const std::size_t b_sz = x.dim(0), t_len = x.dim(1), h = hidden_;
  cached_x_ = x;
  cached_gates_ = Tensor({b_sz, t_len, 4 * h});
  cached_c_ = Tensor({b_sz, t_len, h});
  cached_h_ = Tensor({b_sz, t_len, h});
  cached_tanh_c_ = Tensor({b_sz, t_len, h});

  const float* pwx = wx_.value.data();
  const float* pwh = wh_.value.data();
  const float* pb = bias_.value.data();
  // Recurrence is sequential in T; parallelize over the batch.
  common::parallel_for_each(b_sz, [&](std::size_t b) {
    std::vector<float> h_prev(h, 0.0f), c_prev(h, 0.0f), pre(4 * h);
    for (std::size_t t = 0; t < t_len; ++t) {
      const float* xt = x.data() + (b * t_len + t) * in_dim_;
      for (std::size_t g = 0; g < 4 * h; ++g) {
        float acc = pb[g];
        const float* wxrow = pwx + g * in_dim_;
        for (std::size_t j = 0; j < in_dim_; ++j) acc += wxrow[j] * xt[j];
        const float* whrow = pwh + g * h;
        for (std::size_t j = 0; j < h; ++j) acc += whrow[j] * h_prev[j];
        pre[g] = acc;
      }
      float* gates = cached_gates_.data() + (b * t_len + t) * 4 * h;
      float* ct = cached_c_.data() + (b * t_len + t) * h;
      float* ht = cached_h_.data() + (b * t_len + t) * h;
      float* tct = cached_tanh_c_.data() + (b * t_len + t) * h;
      for (std::size_t j = 0; j < h; ++j) {
        const float ig = ops::sigmoid(pre[j]);
        const float fg = ops::sigmoid(pre[h + j]);
        const float gg = std::tanh(pre[2 * h + j]);
        const float og = ops::sigmoid(pre[3 * h + j]);
        gates[j] = ig;
        gates[h + j] = fg;
        gates[2 * h + j] = gg;
        gates[3 * h + j] = og;
        const float c = fg * c_prev[j] + ig * gg;
        ct[j] = c;
        const float tc = std::tanh(c);
        tct[j] = tc;
        ht[j] = og * tc;
        c_prev[j] = c;
        h_prev[j] = ht[j];
      }
    }
  }, 1);
  return cached_h_;
}

Tensor Lstm::backward(const Tensor& grad_out) {
  const std::size_t b_sz = cached_x_.dim(0), t_len = cached_x_.dim(1), h = hidden_;
  Tensor dx({b_sz, t_len, in_dim_});
  // Parameter gradients are shared across the batch loop; accumulate into
  // per-thread buffers, then reduce. For simplicity (batch sizes are modest)
  // run the batch loop serially and thread only inside heavy ops.
  float* pdwx = wx_.grad.data();
  float* pdwh = wh_.grad.data();
  float* pdb = bias_.grad.data();
  const float* pwx = wx_.value.data();
  const float* pwh = wh_.value.data();

  for (std::size_t b = 0; b < b_sz; ++b) {
    std::vector<float> dh_next(h, 0.0f), dc_next(h, 0.0f), dpre(4 * h);
    for (std::size_t t = t_len; t-- > 0;) {
      const float* gates = cached_gates_.data() + (b * t_len + t) * 4 * h;
      const float* tct = cached_tanh_c_.data() + (b * t_len + t) * h;
      const float* dy = grad_out.data() + (b * t_len + t) * h;
      const float* c_prev =
          t > 0 ? cached_c_.data() + (b * t_len + (t - 1)) * h : nullptr;
      const float* h_prev =
          t > 0 ? cached_h_.data() + (b * t_len + (t - 1)) * h : nullptr;
      for (std::size_t j = 0; j < h; ++j) {
        const float ig = gates[j], fg = gates[h + j], gg = gates[2 * h + j],
                    og = gates[3 * h + j];
        const float dh = dy[j] + dh_next[j];
        const float dc = dh * og * (1.0f - tct[j] * tct[j]) + dc_next[j];
        const float cp = c_prev != nullptr ? c_prev[j] : 0.0f;
        dpre[j] = dc * gg * ig * (1.0f - ig);                  // d pre_i
        dpre[h + j] = dc * cp * fg * (1.0f - fg);              // d pre_f
        dpre[2 * h + j] = dc * ig * (1.0f - gg * gg);          // d pre_g
        dpre[3 * h + j] = dh * tct[j] * og * (1.0f - og);      // d pre_o
        dc_next[j] = dc * fg;
      }
      // Accumulate parameter grads and propagate to x and h_prev.
      const float* xt = cached_x_.data() + (b * t_len + t) * in_dim_;
      float* dxt = dx.data() + (b * t_len + t) * in_dim_;
      std::fill(dh_next.begin(), dh_next.end(), 0.0f);
      for (std::size_t g = 0; g < 4 * h; ++g) {
        const float dg = dpre[g];
        pdb[g] += dg;
        float* dwxrow = pdwx + g * in_dim_;
        for (std::size_t j = 0; j < in_dim_; ++j) dwxrow[j] += dg * xt[j];
        const float* wxrow = pwx + g * in_dim_;
        for (std::size_t j = 0; j < in_dim_; ++j) dxt[j] += dg * wxrow[j];
        if (h_prev != nullptr) {
          float* dwhrow = pdwh + g * h;
          for (std::size_t j = 0; j < h; ++j) dwhrow[j] += dg * h_prev[j];
        }
        const float* whrow = pwh + g * h;
        for (std::size_t j = 0; j < h; ++j) dh_next[j] += dg * whrow[j];
      }
    }
  }
  return dx;
}

// ---------------------------------------------------------------- predictor

LstmPredictor::LstmPredictor(std::size_t addr_dim, std::size_t pc_dim, std::size_t hidden,
                             std::size_t out_dim, std::uint64_t seed) {
  addr_embed_ = std::make_unique<Linear>(addr_dim, hidden, common::derive_seed(seed, 1),
                                         "lstm.addr_embed");
  pc_embed_ = std::make_unique<Linear>(pc_dim, hidden, common::derive_seed(seed, 2),
                                       "lstm.pc_embed");
  lstm_ = std::make_unique<Lstm>(hidden, hidden, common::derive_seed(seed, 3));
  head_ = std::make_unique<Linear>(hidden, out_dim, common::derive_seed(seed, 4), "lstm.head");
}

Tensor LstmPredictor::forward(const Tensor& addr, const Tensor& pc) {
  cached_b_ = addr.dim(0);
  cached_t_ = addr.dim(1);
  Tensor x = addr_embed_->forward(addr);
  Tensor xp = pc_embed_->forward(pc);
  x += xp;
  Tensor hseq = lstm_->forward(x);  // [B,T,H]
  // Take the last hidden state.
  const std::size_t h = lstm_->hidden_dim();
  Tensor last({cached_b_, h});
  for (std::size_t b = 0; b < cached_b_; ++b) {
    const float* src = hseq.data() + (b * cached_t_ + (cached_t_ - 1)) * h;
    float* dst = last.row(b);
    for (std::size_t j = 0; j < h; ++j) dst[j] = src[j];
  }
  return head_->forward(last);
}

void LstmPredictor::backward(const Tensor& d_logits) {
  Tensor d_last = head_->backward(d_logits);  // [B,H]
  const std::size_t h = lstm_->hidden_dim();
  Tensor d_hseq({cached_b_, cached_t_, h});
  for (std::size_t b = 0; b < cached_b_; ++b) {
    float* dst = d_hseq.data() + (b * cached_t_ + (cached_t_ - 1)) * h;
    const float* src = d_last.row(b);
    for (std::size_t j = 0; j < h; ++j) dst[j] = src[j];
  }
  Tensor dx = lstm_->backward(d_hseq);
  addr_embed_->backward(dx);
  pc_embed_->backward(dx);
}

std::vector<Param*> LstmPredictor::params() {
  return collect_params({addr_embed_.get(), pc_embed_.get(), lstm_.get(), head_.get()});
}

void LstmPredictor::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::size_t LstmPredictor::num_params() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

}  // namespace dart::nn
