#include "nn/metrics.hpp"

#include <stdexcept>

#include "nn/ops.hpp"

namespace dart::nn {

namespace {
F1Result f1_from_counts(std::size_t tp, std::size_t fp, std::size_t fn) {
  F1Result r;
  r.true_pos = tp;
  r.false_pos = fp;
  r.false_neg = fn;
  r.precision = (tp + fp) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  r.recall = (tp + fn) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  r.f1 = (r.precision + r.recall) > 0.0
             ? 2.0 * r.precision * r.recall / (r.precision + r.recall)
             : 0.0;
  return r;
}
}  // namespace

F1Result f1_score_from_logits(const Tensor& logits, const Tensor& targets, float threshold) {
  if (logits.numel() != targets.numel()) {
    throw std::invalid_argument("f1_score: size mismatch");
  }
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const bool pred = ops::sigmoid(logits[i]) >= threshold;
    const bool truth = targets[i] >= 0.5f;
    if (pred && truth) ++tp;
    else if (pred && !truth) ++fp;
    else if (!pred && truth) ++fn;
  }
  return f1_from_counts(tp, fp, fn);
}

F1Result f1_score_from_probs(const Tensor& probs, const Tensor& targets, float threshold) {
  if (probs.numel() != targets.numel()) {
    throw std::invalid_argument("f1_score: size mismatch");
  }
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < probs.numel(); ++i) {
    const bool pred = probs[i] >= threshold;
    const bool truth = targets[i] >= 0.5f;
    if (pred && truth) ++tp;
    else if (pred && !truth) ++fp;
    else if (!pred && truth) ++fn;
  }
  return f1_from_counts(tp, fp, fn);
}

}  // namespace dart::nn
