#include "nn/transformer.hpp"

#include <stdexcept>

#include "common/rng.hpp"
#include "nn/ops.hpp"

namespace dart::nn {

// ---------------------------------------------------------------- FeedForward

FeedForward::FeedForward(std::size_t dim, std::size_t hidden, std::uint64_t seed,
                         std::string name) {
  hidden_ = std::make_unique<Linear>(dim, hidden, common::derive_seed(seed, 1), name + ".hidden");
  out_ = std::make_unique<Linear>(hidden, dim, common::derive_seed(seed, 2), name + ".out");
}

Tensor FeedForward::forward(const Tensor& x) {
  cached_pre_relu_ = hidden_->forward(x);
  Tensor h;
  ops::relu(cached_pre_relu_, h);
  h.reshape(cached_pre_relu_.shape());
  return out_->forward(h);
}

Tensor FeedForward::backward(const Tensor& grad_out) {
  Tensor dh = out_->backward(grad_out);
  Tensor d_pre;
  ops::relu_backward(cached_pre_relu_, dh, d_pre);
  d_pre.reshape(dh.shape());
  return hidden_->backward(d_pre);
}

std::vector<Param*> FeedForward::params() { return collect_params({hidden_.get(), out_.get()}); }

// ------------------------------------------------- TransformerEncoderLayer

TransformerEncoderLayer::TransformerEncoderLayer(std::size_t dim, std::size_t heads,
                                                 std::size_t ffn_hidden, std::uint64_t seed,
                                                 std::string name) {
  msa_ = std::make_unique<MultiHeadSelfAttention>(dim, heads, common::derive_seed(seed, 1),
                                                  name + ".msa");
  ffn_ = std::make_unique<FeedForward>(dim, ffn_hidden, common::derive_seed(seed, 2),
                                       name + ".ffn");
  ln1_ = std::make_unique<LayerNorm>(dim, 1e-5f, name + ".ln1");
  ln2_ = std::make_unique<LayerNorm>(dim, 1e-5f, name + ".ln2");
}

Tensor TransformerEncoderLayer::forward(const Tensor& x) {
  Tensor attn = msa_->forward(x);
  attn += x;  // residual
  Tensor x1 = ln1_->forward(attn);
  Tensor ff = ffn_->forward(x1);
  ff += x1;  // residual
  return ln2_->forward(ff);
}

Tensor TransformerEncoderLayer::backward(const Tensor& grad_out) {
  Tensor d_ff_res = ln2_->backward(grad_out);
  Tensor d_x1 = ffn_->backward(d_ff_res);
  d_x1 += d_ff_res;  // residual path
  Tensor d_attn_res = ln1_->backward(d_x1);
  Tensor dx = msa_->backward(d_attn_res);
  dx += d_attn_res;  // residual path
  return dx;
}

std::vector<Param*> TransformerEncoderLayer::params() {
  return collect_params({msa_.get(), ffn_.get(), ln1_.get(), ln2_.get()});
}

// ------------------------------------------------------------ AddressPredictor

AddressPredictor::AddressPredictor(const ModelConfig& config, std::uint64_t seed)
    : config_(config) {
  addr_embed_ = std::make_unique<Linear>(config.addr_dim, config.dim,
                                         common::derive_seed(seed, 1), "addr_embed");
  pc_embed_ = std::make_unique<Linear>(config.pc_dim, config.dim, common::derive_seed(seed, 2),
                                       "pc_embed");
  pos_ = Param(Tensor::randn({config.seq_len, config.dim}, 0.02f, common::derive_seed(seed, 3)),
               "pos_encoding");
  for (std::size_t l = 0; l < config.layers; ++l) {
    layers_.push_back(std::make_unique<TransformerEncoderLayer>(
        config.dim, config.heads, config.ffn_dim, common::derive_seed(seed, 10 + l),
        "enc" + std::to_string(l)));
  }
  final_ln_ = std::make_unique<LayerNorm>(config.dim, 1e-5f, "final_ln");
  head_ = std::make_unique<Linear>(config.dim, config.out_dim, common::derive_seed(seed, 99),
                                   "head");
}

Tensor AddressPredictor::embed(const Tensor& addr, const Tensor& pc) {
  Tensor ea = addr_embed_->forward(addr);  // [B,T,D]
  Tensor ep = pc_embed_->forward(pc);
  ea += ep;
  // Add learned positional encoding to every batch element.
  const std::size_t b_sz = ea.dim(0), t_len = ea.dim(1), d = ea.dim(2);
  for (std::size_t b = 0; b < b_sz; ++b) {
    for (std::size_t t = 0; t < t_len; ++t) {
      float* row = ea.data() + (b * t_len + t) * d;
      const float* p = pos_.value.row(t);
      for (std::size_t j = 0; j < d; ++j) row[j] += p[j];
    }
  }
  return ea;
}

Tensor AddressPredictor::forward(const Tensor& addr, const Tensor& pc) {
  if (addr.ndim() != 3 || pc.ndim() != 3) {
    throw std::invalid_argument("AddressPredictor: inputs must be [B,T,S]");
  }
  cached_b_ = addr.dim(0);
  cached_addr_ = addr;
  cached_pc_ = pc;
  Tensor x = embed(addr, pc);
  for (auto& layer : layers_) x = layer->forward(x);
  x = final_ln_->forward(x);
  Tensor per_token = head_->forward(x);  // [B,T,DO]
  // Mean pool over the patch dimension -> [B, DO] logits.
  const std::size_t t_len = per_token.dim(1), out_d = per_token.dim(2);
  Tensor logits({cached_b_, out_d});
  const float inv_t = 1.0f / static_cast<float>(t_len);
  for (std::size_t b = 0; b < cached_b_; ++b) {
    float* dst = logits.row(b);
    for (std::size_t t = 0; t < t_len; ++t) {
      const float* src = per_token.data() + (b * t_len + t) * out_d;
      for (std::size_t j = 0; j < out_d; ++j) dst[j] += src[j] * inv_t;
    }
  }
  return logits;
}

void AddressPredictor::backward(const Tensor& d_logits) {
  const std::size_t t_len = config_.seq_len, out_d = config_.out_dim;
  // Un-pool: every token receives d_logits / T.
  Tensor d_per_token({cached_b_, t_len, out_d});
  const float inv_t = 1.0f / static_cast<float>(t_len);
  for (std::size_t b = 0; b < cached_b_; ++b) {
    const float* src = d_logits.row(b);
    for (std::size_t t = 0; t < t_len; ++t) {
      float* dst = d_per_token.data() + (b * t_len + t) * out_d;
      for (std::size_t j = 0; j < out_d; ++j) dst[j] = src[j] * inv_t;
    }
  }
  Tensor dx = head_->backward(d_per_token);
  dx = final_ln_->backward(dx);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    dx = (*it)->backward(dx);
  }
  // Positional-encoding gradient: sum over batch.
  const std::size_t d = config_.dim;
  for (std::size_t b = 0; b < cached_b_; ++b) {
    for (std::size_t t = 0; t < t_len; ++t) {
      const float* src = dx.data() + (b * t_len + t) * d;
      float* dst = pos_.grad.row(t);
      for (std::size_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  }
  addr_embed_->backward(dx);
  pc_embed_->backward(dx);
}

Tensor AddressPredictor::predict(const Tensor& addr, const Tensor& pc) {
  // forward() caches only what backward needs; reuse it (callers that never
  // call backward pay a negligible caching cost).
  return forward(addr, pc);
}

std::vector<Param*> AddressPredictor::params() {
  std::vector<Module*> mods = {addr_embed_.get(), pc_embed_.get()};
  for (auto& l : layers_) mods.push_back(l.get());
  mods.push_back(final_ln_.get());
  mods.push_back(head_.get());
  auto out = collect_params(mods);
  out.push_back(&pos_);
  return out;
}

void AddressPredictor::zero_grad() {
  for (Param* p : params()) p->zero_grad();
}

std::size_t AddressPredictor::num_params() {
  std::size_t n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

}  // namespace dart::nn
