// LSTM layer and an LSTM-based memory-access predictor.
//
// This is the substrate for the Voyager-like baseline (Shi et al.,
// ASPLOS'21): the original Voyager uses a hierarchy of LSTMs over page and
// offset streams; we reproduce its essential property for the paper's
// evaluation — an accurate but *sequential* (non-parallelizable) recurrent
// predictor with very high inference latency (Table IX: 27.7K cycles).
#pragma once

#include <memory>
#include <vector>

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace dart::nn {

/// Single-layer LSTM over [B, T, Din]; returns the full hidden sequence
/// [B, T, H]. Gates are fused into one [4H x Din] / [4H x H] pair.
class Lstm : public Module {
 public:
  Lstm(std::size_t in_dim, std::size_t hidden_dim, std::uint64_t seed,
       std::string name = "lstm");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&wx_, &wh_, &bias_}; }

  std::size_t hidden_dim() const { return hidden_; }
  std::size_t in_dim() const { return in_dim_; }

 private:
  std::size_t in_dim_;
  std::size_t hidden_;
  Param wx_;    // [4H, Din]
  Param wh_;    // [4H, H]
  Param bias_;  // [4H]

  // Cached per-step activations for BPTT.
  Tensor cached_x_;       // [B, T, Din]
  Tensor cached_gates_;   // [B, T, 4H] post-activation (i,f,g,o)
  Tensor cached_c_;       // [B, T, H] cell states
  Tensor cached_h_;       // [B, T, H] hidden states
  Tensor cached_tanh_c_;  // [B, T, H]
};

/// LSTM-based multi-label predictor mirroring AddressPredictor's interface:
/// segmented addr+pc -> embedding -> LSTM -> last hidden -> logits [B, DO].
class LstmPredictor {
 public:
  LstmPredictor(std::size_t addr_dim, std::size_t pc_dim, std::size_t hidden,
                std::size_t out_dim, std::uint64_t seed);

  Tensor forward(const Tensor& addr, const Tensor& pc);
  void backward(const Tensor& d_logits);
  std::vector<Param*> params();
  void zero_grad();
  std::size_t num_params();

 private:
  std::unique_ptr<Linear> addr_embed_;
  std::unique_ptr<Linear> pc_embed_;
  std::unique_ptr<Lstm> lstm_;
  std::unique_ptr<Linear> head_;
  std::size_t cached_b_ = 0, cached_t_ = 0;
};

}  // namespace dart::nn
