#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace dart::nn {

namespace {
constexpr std::uint32_t kMagic = 0xDA27A0D1;

void write_u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& in) {
  std::uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

bool save_params(const std::vector<Param*>& params, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  write_u64(out, params.size());
  for (const Param* p : params) {
    write_u64(out, p->name.size());
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u64(out, p->value.ndim());
    for (std::size_t d = 0; d < p->value.ndim(); ++d) write_u64(out, p->value.dim(d));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

void load_params(const std::vector<Param*>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic) throw std::runtime_error("load_params: bad magic in " + path);
  const std::uint64_t count = read_u64(in);
  if (count != params.size()) {
    throw std::runtime_error("load_params: parameter count mismatch (checkpoint " +
                             std::to_string(count) + ", model " +
                             std::to_string(params.size()) + ")");
  }
  for (Param* p : params) {
    const std::uint64_t name_len = read_u64(in);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (name != p->name) {
      throw std::runtime_error("load_params: expected parameter '" + p->name + "', found '" +
                               name + "'");
    }
    const std::uint64_t ndim = read_u64(in);
    std::vector<std::size_t> shape(ndim);
    for (auto& d : shape) d = read_u64(in);
    if (shape != p->value.shape()) {
      throw std::runtime_error("load_params: shape mismatch for '" + name + "'");
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    if (!in) throw std::runtime_error("load_params: truncated payload for '" + name + "'");
  }
}

}  // namespace dart::nn
