#include "nn/linear.hpp"

#include <cmath>

#include "common/thread_pool.hpp"
#include "nn/ops.hpp"

namespace dart::nn {

namespace {
/// Flattens leading dims into rows: [b, t, d] -> [b*t, d]; [m, d] unchanged.
Tensor flatten_rows(const Tensor& x) {
  const std::size_t d = x.dim(x.ndim() - 1);
  return x.reshaped({x.numel() / d, d});
}
}  // namespace

Linear::Linear(std::size_t in_dim, std::size_t out_dim, std::uint64_t seed, std::string name)
    : in_dim_(in_dim), out_dim_(out_dim) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  weight_ = Param(Tensor::rand_uniform({out_dim, in_dim}, bound, seed), name + ".weight");
  bias_ = Param(Tensor({out_dim}), name + ".bias");
}

Tensor Linear::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  cached_x_ = flatten_rows(x);
  Tensor y;
  ops::linear_forward(cached_x_, weight_.value, bias_.value, y);
  auto out_shape = cached_shape_;
  out_shape.back() = out_dim_;
  y.reshape(out_shape);
  return y;
}

Tensor Linear::apply(const Tensor& x) const {
  Tensor flat = flatten_rows(x);
  Tensor y;
  ops::linear_forward(flat, weight_.value, bias_.value, y);
  auto out_shape = x.shape();
  out_shape.back() = out_dim_;
  y.reshape(out_shape);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  Tensor dy = flatten_rows(grad_out);
  const std::size_t m = dy.dim(0);
  // dW += dy^T x
  Tensor dw;
  ops::matmul_tn(dy, cached_x_, dw);
  weight_.grad += dw;
  // db += column sums of dy
  float* db = bias_.grad.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = dy.row(i);
    for (std::size_t j = 0; j < out_dim_; ++j) db[j] += row[j];
  }
  // dx = dy W
  Tensor dx;
  ops::matmul(dy, weight_.value, dx);
  dx.reshape(cached_shape_);
  return dx;
}

}  // namespace dart::nn
