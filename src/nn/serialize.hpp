// Model checkpointing: save/load the flat parameter list of any predictor
// exposing params(). Binary format: magic, count, then per parameter a
// name, shape, and raw float payload. Loading validates names and shapes
// against the constructed architecture, so a checkpoint can never be
// silently applied to the wrong model.
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"

namespace dart::nn {

/// Writes `params` to `path`. Returns false on I/O failure.
bool save_params(const std::vector<Param*>& params, const std::string& path);

/// Reads a checkpoint into `params`; names, order, and shapes must match.
/// Throws std::runtime_error on format or shape mismatch.
void load_params(const std::vector<Param*>& params, const std::string& path);

/// Convenience wrappers for any model with a params() method.
template <typename Model>
bool save_model(Model& model, const std::string& path) {
  return save_params(model.params(), path);
}

template <typename Model>
void load_model(Model& model, const std::string& path) {
  load_params(model.params(), path);
}

}  // namespace dart::nn
