#include "nn/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace dart::nn {

namespace {
Tensor gather_rows(const Tensor& t, const std::vector<std::size_t>& idx) {
  const std::size_t row_sz = t.numel() / t.dim(0);
  auto shape = t.shape();
  shape[0] = idx.size();
  Tensor out(shape);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const float* src = t.data() + idx[i] * row_sz;
    float* dst = out.data() + i * row_sz;
    std::copy(src, src + row_sz, dst);
  }
  return out;
}
}  // namespace

Dataset Dataset::slice(std::size_t begin, std::size_t end) const {
  if (end > size() || begin > end) throw std::out_of_range("Dataset::slice");
  std::vector<std::size_t> idx(end - begin);
  std::iota(idx.begin(), idx.end(), begin);
  return Dataset{gather_rows(addr, idx), gather_rows(pc, idx), gather_rows(labels, idx)};
}

void Dataset::shuffle(std::uint64_t seed) {
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), 0);
  common::Rng rng(seed);
  rng.shuffle(idx);
  addr = gather_rows(addr, idx);
  pc = gather_rows(pc, idx);
  labels = gather_rows(labels, idx);
}

std::pair<Dataset, Dataset> Dataset::split(double train_frac) const {
  const auto n_train = static_cast<std::size_t>(static_cast<double>(size()) * train_frac);
  return {slice(0, n_train), slice(n_train, size())};
}

}  // namespace dart::nn
