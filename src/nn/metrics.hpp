// Evaluation metrics: micro-averaged F1 for multi-label prediction (the
// paper's prediction metric, §VII-A4) and cosine similarity (Fig. 11).
#pragma once

#include "nn/tensor.hpp"

namespace dart::nn {

struct F1Result {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t true_pos = 0;
  std::size_t false_pos = 0;
  std::size_t false_neg = 0;
};

/// Micro-averaged F1 over all (sample, label) pairs; a label fires when
/// sigmoid(logit) >= threshold.
F1Result f1_score_from_logits(const Tensor& logits, const Tensor& targets,
                              float threshold = 0.5f);

/// Micro-averaged F1 when predictions are already probabilities/bits.
F1Result f1_score_from_probs(const Tensor& probs, const Tensor& targets,
                             float threshold = 0.5f);

}  // namespace dart::nn
