#include "nn/layernorm.hpp"

#include <cmath>

#include "common/thread_pool.hpp"

namespace dart::nn {

LayerNorm::LayerNorm(std::size_t dim, float eps, std::string name) : dim_(dim), eps_(eps) {
  Tensor g({dim});
  g.fill(1.0f);
  gamma_ = Param(std::move(g), name + ".gamma");
  beta_ = Param(Tensor({dim}), name + ".beta");
}

namespace {
void normalize_rows(const Tensor& x, std::size_t dim, float eps, const Tensor& gamma,
                    const Tensor& beta, Tensor& y, Tensor* xhat, Tensor* inv_std) {
  const std::size_t m = x.numel() / dim;
  if (y.numel() != x.numel()) y = Tensor({m, dim});
  const float* px = x.data();
  float* py = y.data();
  float* pxh = xhat != nullptr ? xhat->data() : nullptr;
  float* pis = inv_std != nullptr ? inv_std->data() : nullptr;
  const float* pg = gamma.data();
  const float* pb = beta.data();
  dart::common::parallel_for(
      m,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const float* row = px + i * dim;
          float mean = 0.0f;
          for (std::size_t j = 0; j < dim; ++j) mean += row[j];
          mean /= static_cast<float>(dim);
          float var = 0.0f;
          for (std::size_t j = 0; j < dim; ++j) {
            const float d = row[j] - mean;
            var += d * d;
          }
          var /= static_cast<float>(dim);
          const float is = 1.0f / std::sqrt(var + eps);
          if (pis != nullptr) pis[i] = is;
          float* yrow = py + i * dim;
          for (std::size_t j = 0; j < dim; ++j) {
            const float xh = (row[j] - mean) * is;
            if (pxh != nullptr) pxh[i * dim + j] = xh;
            yrow[j] = xh * pg[j] + pb[j];
          }
        }
      },
      64);
}
}  // namespace

Tensor LayerNorm::forward(const Tensor& x) {
  cached_shape_ = x.shape();
  const std::size_t m = x.numel() / dim_;
  cached_xhat_ = Tensor({m, dim_});
  cached_inv_std_ = Tensor({m});
  Tensor y;
  normalize_rows(x, dim_, eps_, gamma_.value, beta_.value, y, &cached_xhat_, &cached_inv_std_);
  y.reshape(cached_shape_);
  return y;
}

Tensor LayerNorm::apply(const Tensor& x) const {
  Tensor y;
  normalize_rows(x, dim_, eps_, gamma_.value, beta_.value, y, nullptr, nullptr);
  y.reshape(x.shape());
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  const std::size_t m = grad_out.numel() / dim_;
  Tensor dy = grad_out.reshaped({m, dim_});
  Tensor dx({m, dim_});
  float* pdg = gamma_.grad.data();
  float* pdb = beta_.grad.data();
  const float* pg = gamma_.value.data();
  // Parameter grads are reductions over rows; accumulate serially (m is small
  // relative to the matmuls, and this keeps the accumulation race-free).
  for (std::size_t i = 0; i < m; ++i) {
    const float* dyrow = dy.row(i);
    const float* xhrow = cached_xhat_.row(i);
    for (std::size_t j = 0; j < dim_; ++j) {
      pdg[j] += dyrow[j] * xhrow[j];
      pdb[j] += dyrow[j];
    }
  }
  common::parallel_for(
      m,
      [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const float* dyrow = dy.row(i);
          const float* xhrow = cached_xhat_.row(i);
          float* dxrow = dx.row(i);
          // Standard LN backward: dx = inv_std/D * (D*g1 - sum(g1) - xhat*sum(g1*xhat))
          // where g1 = dy * gamma.
          float sum_g1 = 0.0f, sum_g1_xhat = 0.0f;
          for (std::size_t j = 0; j < dim_; ++j) {
            const float g1 = dyrow[j] * pg[j];
            sum_g1 += g1;
            sum_g1_xhat += g1 * xhrow[j];
          }
          const float inv_d = 1.0f / static_cast<float>(dim_);
          const float is = cached_inv_std_[i];
          for (std::size_t j = 0; j < dim_; ++j) {
            const float g1 = dyrow[j] * pg[j];
            dxrow[j] = is * (g1 - inv_d * sum_g1 - xhrow[j] * inv_d * sum_g1_xhat);
          }
        }
      },
      64);
  dx.reshape(cached_shape_);
  return dx;
}

}  // namespace dart::nn
