// Base types for trainable layers.
//
// The training stack uses explicit per-layer forward/backward (no autograd
// tape): each module caches what it needs during forward and consumes a
// gradient-w.r.t.-output in backward, accumulating parameter gradients and
// returning the gradient w.r.t. its input. This keeps the memory model
// obvious and the code auditable.
#pragma once

#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace dart::nn {

/// A trainable parameter: value plus accumulated gradient.
struct Param {
  Tensor value;
  Tensor grad;
  std::string name;

  Param() = default;
  Param(Tensor v, std::string n) : value(std::move(v)), grad(value.shape()), name(std::move(n)) {}

  void zero_grad() { grad.zero(); }
};

/// Interface for layers operating on a single input tensor.
class Module {
 public:
  virtual ~Module() = default;

  /// Computes the layer output, caching activations needed by backward.
  virtual Tensor forward(const Tensor& x) = 0;

  /// Consumes dL/d(output), accumulates parameter grads, returns dL/d(input).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// All trainable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  void zero_grad() {
    for (Param* p : params()) p->zero_grad();
  }
};

/// Collects parameters from several modules into one flat list.
inline std::vector<Param*> collect_params(const std::vector<Module*>& modules) {
  std::vector<Param*> out;
  for (Module* m : modules) {
    auto ps = m->params();
    out.insert(out.end(), ps.begin(), ps.end());
  }
  return out;
}

}  // namespace dart::nn
