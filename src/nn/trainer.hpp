// Mini-batch training loops for the attention and LSTM predictors, including
// the knowledge-distillation loop of §VI-D.
//
// Both predictor classes expose the same implicit interface
// (forward(addr, pc) -> logits, backward(d_logits), params()), so the loops
// are templates rather than a virtual hierarchy.
#pragma once

#include <cstdio>
#include <functional>

#include <cmath>

#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/optimizer.hpp"

namespace dart::nn {

struct TrainOptions {
  std::size_t epochs = 6;
  std::size_t batch_size = 64;
  float lr = 1e-3f;
  /// Positive-class weight for the sparse delta bitmap (0 = auto: derived
  /// from the label density, clamped to [1, 6]).
  float pos_weight = 0.0f;
  bool verbose = false;
  std::uint64_t shuffle_seed = 17;
};

/// Auto positive weight: sqrt of the inverse positive rate, clamped.
inline float resolve_pos_weight(const TrainOptions& opt, const Dataset& data) {
  if (opt.pos_weight > 0.0f) return opt.pos_weight;
  const double rate =
      data.labels.numel() > 0 ? data.labels.sum() / static_cast<double>(data.labels.numel())
                              : 0.5;
  if (rate <= 0.0) return 1.0f;
  const double w = std::sqrt(1.0 / rate);
  return static_cast<float>(std::min(6.0, std::max(1.0, w)));
}

struct KdOptions {
  float temperature = 2.0f;  ///< T of the T-Sigmoid (Eq. 24)
  float lambda = 0.5f;       ///< weight of the KD term (Eq. 25)
};

/// Trains `model` with BCE-with-logits on `train`. Returns final epoch loss.
template <typename Predictor>
double train_bce(Predictor& model, const Dataset& train, const TrainOptions& opt) {
  Adam adam(model.params(), opt.lr);
  Dataset data = train;
  const float pos_w = resolve_pos_weight(opt, train);
  double last_loss = 0.0;
  for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
    data.shuffle(opt.shuffle_seed + epoch);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < data.size(); begin += opt.batch_size) {
      const std::size_t end = std::min(data.size(), begin + opt.batch_size);
      Dataset batch = data.slice(begin, end);
      adam.zero_grad();
      Tensor logits = model.forward(batch.addr, batch.pc);
      Tensor d_logits;
      epoch_loss += bce_with_logits(logits, batch.labels, d_logits, pos_w);
      model.backward(d_logits);
      adam.step();
      ++batches;
    }
    last_loss = epoch_loss / static_cast<double>(std::max<std::size_t>(1, batches));
    if (opt.verbose) std::fprintf(stderr, "[train] epoch %zu loss %.4f\n", epoch, last_loss);
  }
  return last_loss;
}

/// Knowledge distillation: teacher logits are computed on the fly per batch;
/// gradient flows only into the student. Returns final epoch loss.
template <typename Student, typename Teacher>
double train_distill(Student& student, Teacher& teacher, const Dataset& train,
                     const TrainOptions& opt, const KdOptions& kd) {
  Adam adam(student.params(), opt.lr);
  Dataset data = train;
  double last_loss = 0.0;
  for (std::size_t epoch = 0; epoch < opt.epochs; ++epoch) {
    data.shuffle(opt.shuffle_seed + epoch);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < data.size(); begin += opt.batch_size) {
      const std::size_t end = std::min(data.size(), begin + opt.batch_size);
      Dataset batch = data.slice(begin, end);
      Tensor teacher_logits = teacher.forward(batch.addr, batch.pc);
      adam.zero_grad();
      Tensor logits = student.forward(batch.addr, batch.pc);
      Tensor d_logits;
      epoch_loss += distillation_loss(logits, teacher_logits, batch.labels, kd.temperature,
                                      kd.lambda, d_logits);
      student.backward(d_logits);
      adam.step();
      ++batches;
    }
    last_loss = epoch_loss / static_cast<double>(std::max<std::size_t>(1, batches));
    if (opt.verbose) std::fprintf(stderr, "[distill] epoch %zu loss %.4f\n", epoch, last_loss);
  }
  return last_loss;
}

/// Batched evaluation to bound peak memory; returns micro-F1 on `test`.
template <typename Predictor>
F1Result evaluate_f1(Predictor& model, const Dataset& test, std::size_t batch_size = 256) {
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(test.size(), begin + batch_size);
    Dataset batch = test.slice(begin, end);
    Tensor logits = model.forward(batch.addr, batch.pc);
    F1Result r = f1_score_from_logits(logits, batch.labels);
    tp += r.true_pos;
    fp += r.false_pos;
    fn += r.false_neg;
  }
  F1Result total;
  total.true_pos = tp;
  total.false_pos = fp;
  total.false_neg = fn;
  total.precision = (tp + fp) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  total.recall = (tp + fn) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  total.f1 = (total.precision + total.recall) > 0.0
                 ? 2.0 * total.precision * total.recall / (total.precision + total.recall)
                 : 0.0;
  return total;
}

}  // namespace dart::nn
